package engine

import (
	"context"
	"strings"
	"testing"

	"insightnotes/internal/annotation"
	"insightnotes/internal/sql"
	"insightnotes/internal/types"
)

func TestUpdateStatement(t *testing.T) {
	db := birdDB(t)
	res := mustExec(t, db, "UPDATE birds SET wingspan = wingspan + 0.5, name = 'Giant Goose' WHERE id = 1")
	if res.Count != 1 {
		t.Fatalf("updated %d", res.Count)
	}
	q := mustExec(t, db, "SELECT name, wingspan FROM birds WHERE id = 1")
	if q.Rows[0].Tuple[0].Str() != "Giant Goose" || q.Rows[0].Tuple[1].Float() != 2.3 {
		t.Fatalf("row = %v", q.Rows[0].Tuple)
	}
	// Annotations survive updates: they annotate tuple identity.
	mustExec(t, db, "ADD ANNOTATION 'observed feeding at dawn' ON birds WHERE id = 2")
	mustExec(t, db, "UPDATE birds SET wingspan = 9.9 WHERE id = 2")
	env := db.StoredEnvelope("birds", 2)
	if env == nil || env.Object("ClassBird1") == nil {
		t.Error("annotation lost across UPDATE")
	}
	// Update of zero rows succeeds with count 0.
	res = mustExec(t, db, "UPDATE birds SET wingspan = 0 WHERE id = 99")
	if res.Count != 0 {
		t.Errorf("count = %d", res.Count)
	}
	// Validation errors.
	for _, bad := range []string{
		"UPDATE birds SET nope = 1",
		"UPDATE missing SET id = 1",
		"UPDATE birds SET id = 'text'",
	} {
		if _, err := db.Exec(context.Background(), bad); err == nil {
			t.Errorf("Exec(%q) succeeded", bad)
		}
	}
}

func TestDeleteStatementCascadesAnnotations(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'only on bird 1' ON birds WHERE id = 1")
	// Shared annotation across birds 1 and 2.
	sharedID, _, err := db.AnnotateTargets(annotation.Annotation{Text: "migration note shared"},
		[]TargetSpec{{Table: "birds", Where: parseWhere(t, "id < 3")}})
	if err != nil {
		t.Fatal(err)
	}
	before := db.Annotations().Count()

	res := mustExec(t, db, "DELETE FROM birds WHERE id = 1")
	if res.Count != 1 {
		t.Fatalf("deleted %d", res.Count)
	}
	if !strings.Contains(res.Message, "1 orphaned annotation") {
		t.Errorf("message = %q", res.Message)
	}
	// The tuple is gone.
	q := mustExec(t, db, "SELECT id FROM birds")
	if len(q.Rows) != 2 {
		t.Fatalf("rows = %d", len(q.Rows))
	}
	// The exclusive annotation was orphaned and removed; the shared one
	// survives on bird 2.
	if db.Annotations().Count() != before-1 {
		t.Errorf("annotations = %d, want %d", db.Annotations().Count(), before-1)
	}
	if _, err := db.Annotations().Get(sharedID); err != nil {
		t.Errorf("shared annotation removed: %v", err)
	}
	if got := db.Annotations().RowsOf(sharedID, "birds"); len(got) != 1 || got[0] != 2 {
		t.Errorf("shared annotation rows = %v", got)
	}
	// Envelope of the deleted tuple is gone.
	if db.StoredEnvelope("birds", 1) != nil {
		t.Error("envelope survived DELETE")
	}
}

func TestDropAnnotationCuratesSummaries(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'observed feeding at dawn' ON birds WHERE id = 1")
	res := mustExec(t, db, "ADD ANNOTATION 'signs of avian influenza' ON birds WHERE id = 1")
	_ = res
	env := db.StoredEnvelope("birds", 1)
	if env.Object("ClassBird1").Len() != 2 {
		t.Fatalf("setup: %d members", env.Object("ClassBird1").Len())
	}
	// Retract the first annotation (id 1).
	mustExec(t, db, "DROP ANNOTATION 1")
	env = db.StoredEnvelope("birds", 1)
	if env.Object("ClassBird1").Len() != 1 {
		t.Fatalf("after retraction: %d members", env.Object("ClassBird1").Len())
	}
	if !strings.Contains(env.Object("ClassBird1").Render(), "(Disease, 1)") {
		t.Errorf("render = %q", env.Object("ClassBird1").Render())
	}
	if _, err := db.Annotations().Get(1); err == nil {
		t.Error("raw annotation still present")
	}
	// Retracting again fails.
	if _, err := db.Exec(context.Background(), "DROP ANNOTATION 1"); err == nil {
		t.Error("double retraction succeeded")
	}
	// Retracting the last annotation empties the envelope entirely.
	mustExec(t, db, "DROP ANNOTATION 2")
	if db.StoredEnvelope("birds", 1) != nil {
		t.Error("empty envelope kept")
	}
}

func TestDropAnnotationMultiTuple(t *testing.T) {
	db := birdDB(t)
	id, n, err := db.AnnotateTargets(annotation.Annotation{Text: "observed feeding at dawn"},
		[]TargetSpec{{Table: "birds"}})
	if err != nil || n != 3 {
		t.Fatal(err)
	}
	if err := db.DropAnnotation(id); err != nil {
		t.Fatal(err)
	}
	for row := 1; row <= 3; row++ {
		if env := db.StoredEnvelope("birds", annRow(row)); env != nil {
			t.Errorf("row %d envelope survived retraction", row)
		}
	}
}

func TestZoomInSkipsRetractedAnnotations(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'observed feeding at dawn' ON birds WHERE id = 1")
	mustExec(t, db, "ADD ANNOTATION 'found eating stonewort' ON birds WHERE id = 1")
	res := mustExec(t, db, "SELECT id, name FROM birds WHERE id = 1")
	// Retract one of the two Behavior annotations AFTER the query was
	// cached; zoom-in returns only the survivor.
	mustExec(t, db, "DROP ANNOTATION 1")
	zoom := mustExec(t, db, sqlZoom(res.QID, "", "ClassBird1", 1))
	if zoom.Count != 1 {
		t.Fatalf("zoom = %d annotations, want the survivor only", zoom.Count)
	}
}

func parseWhere(t *testing.T, cond string) sql.Expr {
	t.Helper()
	stmt, err := sql.Parse("SELECT x FROM t WHERE " + cond)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*sql.Select).Where
}

func annRow(n int) types.RowID { return types.RowID(n) }
