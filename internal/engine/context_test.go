package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestQueryContextPreCancelled(t *testing.T) {
	db := birdDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, "SELECT id, name FROM birds")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestExecContextCancelledWrite(t *testing.T) {
	db := birdDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// SELECT routed through Exec honors the context too.
	if _, err := db.ExecContext(ctx, "SELECT id FROM birds"); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The statement never ran: a fresh query still sees three birds.
	res := mustExec(t, db, "SELECT COUNT(*) FROM birds")
	if got := res.Rows[0].Tuple[0].Int(); got != 3 {
		t.Fatalf("birds = %d, want 3", got)
	}
}

func TestExecScriptContextStopsBetweenStatements(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := db.ExecScriptContext(ctx, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(results) != 0 {
		t.Fatalf("cancelled script completed %d statements", len(results))
	}
}

// TestZoomInCancelledReexecution forces the zoom-in cache-miss path (a
// 1-byte budget admits nothing) and cancels the recreation query: the
// zoom-in must fail with the context error and must not leave a partial
// cache entry behind.
func TestZoomInCancelledReexecution(t *testing.T) {
	db, err := Open(Config{CacheDir: t.TempDir(), CacheBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	script := `
	CREATE TABLE birds (id INT, name TEXT, sci_name TEXT, wingspan FLOAT);
	INSERT INTO birds VALUES (1, 'Swan Goose', 'Anser cygnoides', 1.8);
	CREATE SUMMARY INSTANCE ClassBird1 TYPE Classifier LABELS ('Behavior', 'Other');
	TRAIN SUMMARY ClassBird1 ('found eating stonewort', 'Behavior'), ('see photo', 'Other');
	LINK SUMMARY ClassBird1 TO birds;
	ADD ANNOTATION 'found eating stonewort at dawn' ON birds WHERE id = 1;
	`
	if _, err := db.ExecScript(context.Background(), script); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(context.Background(), "SELECT id, name FROM birds")
	if err != nil {
		t.Fatal(err)
	}
	if db.Cache().Contains(res.QID) {
		t.Fatal("1-byte cache budget admitted an entry; test premise broken")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = db.ZoomInContext(ctx, ZoomInRequest{QID: res.QID, Instance: "ClassBird1", Index: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if db.Cache().Contains(res.QID) {
		t.Fatal("cancelled zoom-in re-execution left a cache entry")
	}

	// The same zoom-in succeeds under a live context.
	out, hit, err := db.ZoomIn(context.Background(), ZoomInRequest{QID: res.QID, Instance: "ClassBird1", Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("expected a cache miss on the retry")
	}
	if len(out) != 1 {
		t.Fatalf("zoom-in matched %d rows, want 1", len(out))
	}
}

func TestQueryStatsPopulated(t *testing.T) {
	db := birdDB(t)
	res, err := db.Query(context.Background(), "SELECT id, name FROM birds WHERE id <= 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil {
		t.Fatal("SELECT result missing Stats")
	}
	if res.Stats.Rows != len(res.Rows) {
		t.Fatalf("Stats.Rows = %d, want %d", res.Stats.Rows, len(res.Rows))
	}
	if res.Stats.OpRows < int64(len(res.Rows)) {
		t.Fatalf("Stats.OpRows = %d, want >= %d", res.Stats.OpRows, len(res.Rows))
	}
	if !strings.Contains(res.Stats.String(), "row(s)") {
		t.Fatalf("stats summary %q malformed", res.Stats.String())
	}
}

func TestExplainAnalyzeEndToEnd(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'observed feeding at dawn' ON birds WHERE id = 1")
	res := mustExec(t, db, "EXPLAIN ANALYZE SELECT id, name FROM birds WHERE id <= 2")
	if res.Stats == nil {
		t.Fatal("EXPLAIN ANALYZE missing Stats")
	}
	var text strings.Builder
	for _, row := range res.Rows {
		text.WriteString(row.Tuple[0].Str())
		text.WriteByte('\n')
	}
	out := text.String()
	for _, want := range []string{"Project+Curate", "(rows=", "time=", "Total:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
	// Plain EXPLAIN stays counter-free.
	res = mustExec(t, db, "EXPLAIN SELECT id FROM birds")
	for _, row := range res.Rows {
		if strings.Contains(row.Tuple[0].Str(), "rows=") {
			t.Fatalf("plain EXPLAIN leaked counters: %s", row.Tuple[0].Str())
		}
	}
	if res.Stats != nil {
		t.Fatal("plain EXPLAIN should not carry Stats")
	}
}
