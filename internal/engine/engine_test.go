package engine

import (
	"context"
	"strings"
	"testing"

	"insightnotes/internal/types"
	"insightnotes/internal/zoomin"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// mustExec runs a statement that must succeed.
func mustExec(t *testing.T, db *DB, stmt string) *Result {
	t.Helper()
	res, err := db.Exec(context.Background(), stmt)
	if err != nil {
		t.Fatalf("Exec(%q): %v", stmt, err)
	}
	return res
}

// birdDB builds the demo schema: birds plus a trained four-class
// classifier, a cluster instance, and a snippet instance, all linked.
func birdDB(t *testing.T) *DB {
	t.Helper()
	db := testDB(t)
	script := `
	CREATE TABLE birds (id INT, name TEXT, sci_name TEXT, wingspan FLOAT);
	INSERT INTO birds VALUES
		(1, 'Swan Goose', 'Anser cygnoides', 1.8),
		(2, 'Mute Swan', 'Cygnus olor', 2.2),
		(3, 'Whooper Swan', 'Cygnus cygnus', 2.3);
	CREATE SUMMARY INSTANCE ClassBird1 TYPE Classifier
		LABELS ('Behavior', 'Disease', 'Anatomy', 'Other');
	TRAIN SUMMARY ClassBird1
		('found eating stonewort near the shore', 'Behavior'),
		('observed feeding at dawn in flocks', 'Behavior'),
		('signs of avian influenza infection', 'Disease'),
		('lesions suggest avian pox virus', 'Disease'),
		('wingspan measured at 1.8 meters', 'Anatomy'),
		('large body long neck orange bill', 'Anatomy'),
		('photo attached from trail camera', 'Other'),
		('see the linked wikipedia article', 'Other');
	CREATE SUMMARY INSTANCE SimCluster TYPE Cluster WITH (threshold = 0.3);
	CREATE SUMMARY INSTANCE TextSummary1 TYPE Snippet WITH (sentences = 2);
	LINK SUMMARY ClassBird1 TO birds;
	LINK SUMMARY SimCluster TO birds;
	LINK SUMMARY TextSummary1 TO birds;
	`
	if _, err := db.ExecScript(context.Background(), script); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDDLAndInsertAndSelect(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	res := mustExec(t, db, "INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	if res.Count != 2 {
		t.Fatalf("inserted = %d", res.Count)
	}
	res = mustExec(t, db, "SELECT a, b FROM t WHERE a > 1")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[1].Str() != "y" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.QID == 0 {
		t.Error("SELECT did not receive a QID")
	}
	// Consecutive queries get distinct QIDs.
	res2 := mustExec(t, db, "SELECT a FROM t")
	if res2.QID == res.QID {
		t.Error("QIDs not unique")
	}
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	for _, bad := range []string{
		"SELECT a FROM missing",
		"CREATE TABLE t (a BLOB)",
		"INSERT INTO missing VALUES (1)",
		"not sql at all",
		"ZOOMIN REFERENCE QID 12345 ON x INDEX 1",
		"SHOW ANNOTATIONS ON missing",
		"TRAIN SUMMARY missing ('a','b')",
		"LINK SUMMARY missing TO alsoMissing",
	} {
		if _, err := db.Exec(context.Background(), bad); err == nil {
			t.Errorf("Exec(%q) succeeded", bad)
		}
	}
	// INSERT with column references is rejected.
	mustExec(t, db, "CREATE TABLE t (a INT)")
	if _, err := db.Exec(context.Background(), "INSERT INTO t VALUES (someColumn)"); err == nil {
		t.Error("non-constant INSERT accepted")
	}
}

func TestAnnotateMaintainsSummaries(t *testing.T) {
	db := birdDB(t)
	res := mustExec(t, db,
		`ADD ANNOTATION 'found eating stonewort and grasses' AUTHOR 'watcher1'
		 ON birds WHERE name = 'Swan Goose'`)
	if res.Count != 1 {
		t.Fatalf("annotated %d tuples", res.Count)
	}
	env := db.StoredEnvelope("birds", 1)
	if env == nil {
		t.Fatal("no envelope maintained")
	}
	cls := env.Object("ClassBird1")
	if cls == nil || cls.Len() != 1 {
		t.Fatalf("classifier object = %v", cls)
	}
	if !strings.Contains(cls.Render(), "(Behavior, 1)") {
		t.Errorf("Render = %q", cls.Render())
	}
	if env.Object("SimCluster") == nil {
		t.Error("cluster object missing")
	}
	// Text-only annotation contributes nothing to the snippet instance.
	if env.Object("TextSummary1") != nil {
		t.Error("snippet object created for non-document annotation")
	}
}

func TestAnnotateColumnsAndNoMatch(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'size seems wrong' ON birds (wingspan) WHERE id = 1")
	env := db.StoredEnvelope("birds", 1)
	anns := env.Annotations()
	if len(anns) != 1 {
		t.Fatalf("annotations = %v", anns)
	}
	// Coverage is just the wingspan column (ordinal 3).
	if !env.Cover[anns[0]].Has(3) || env.Cover[anns[0]].Count() != 1 {
		t.Errorf("coverage = %v", env.Cover[anns[0]])
	}
	if _, err := db.Exec(context.Background(), "ADD ANNOTATION 'x' ON birds WHERE id = 99"); err == nil {
		t.Error("no-match annotation accepted")
	}
	if _, err := db.Exec(context.Background(), "ADD ANNOTATION 'x' ON birds (nope) WHERE id = 1"); err == nil {
		t.Error("bad column accepted")
	}
}

func TestDocumentAnnotationProducesSnippet(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, `ADD ANNOTATION 'reference article'
		TITLE 'Wikipedia: Swan Goose'
		DOCUMENT 'The swan goose is a large goose. It breeds in Mongolia. It eats stonewort in lakes. The species was described in 1758.'
		ON birds WHERE id = 1`)
	env := db.StoredEnvelope("birds", 1)
	snp := env.Object("TextSummary1")
	if snp == nil || snp.Len() != 1 {
		t.Fatalf("snippet object = %v", snp)
	}
	if !strings.Contains(snp.Render(), "Wikipedia: Swan Goose") {
		t.Errorf("Render = %q", snp.Render())
	}
}

func TestQueryPropagatesSummaries(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'observed feeding in flocks' ON birds WHERE id = 1")
	mustExec(t, db, "ADD ANNOTATION 'avian influenza suspected' ON birds WHERE id = 1")
	res := mustExec(t, db, "SELECT name, wingspan FROM birds WHERE id = 1")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	env := res.Rows[0].Env
	if env == nil {
		t.Fatal("query result lost summaries")
	}
	cls := env.Object("ClassBird1")
	if cls.Len() != 2 {
		t.Errorf("propagated members = %d", cls.Len())
	}
}

func TestSummarizeOnceOptimization(t *testing.T) {
	db := birdDB(t)
	cls, _ := db.Catalog().Instance("ClassBird1")
	cls.ResetStats()
	// One annotation attached to all three tuples: the classifier must be
	// invoked once, not three times (E5's mechanism).
	mustExec(t, db, "ADD ANNOTATION 'migration route confirmed by tracking' ON birds")
	if got := cls.SummarizeCalls(); got != 1 {
		t.Errorf("SummarizeCalls = %d, want 1 (summarize-once)", got)
	}
	for row := types.RowID(1); row <= 3; row++ {
		env := db.StoredEnvelope("birds", row)
		if env == nil || env.Object("ClassBird1").Len() != 1 {
			t.Errorf("row %d missing the shared annotation's summary", row)
		}
	}
}

func TestSummarizeOnceDisabledAblation(t *testing.T) {
	db, err := Open(Config{CacheDir: t.TempDir(), DisableSummarizeOnce: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecScript(context.Background(), `
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2), (3);
		CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('x', 'y');
		TRAIN SUMMARY C ('left side', 'x'), ('right side', 'y');
		LINK SUMMARY C TO t;
	`); err != nil {
		t.Fatal(err)
	}
	in, _ := db.Catalog().Instance("C")
	in.ResetStats()
	mustExec(t, db, "ADD ANNOTATION 'left side note' ON t")
	if got := in.SummarizeCalls(); got != 3 {
		t.Errorf("SummarizeCalls = %d, want 3 with summarize-once disabled", got)
	}
}

func TestLinkBackfillsAndUnlinkRemoves(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'wingspan larger than reported' ON birds WHERE id = 2")
	// A new instance linked later summarizes pre-existing annotations.
	mustExec(t, db, "CREATE SUMMARY INSTANCE LateCluster TYPE Cluster WITH (threshold = 0.3)")
	mustExec(t, db, "LINK SUMMARY LateCluster TO birds")
	env := db.StoredEnvelope("birds", 2)
	if env.Object("LateCluster") == nil || env.Object("LateCluster").Len() != 1 {
		t.Fatalf("backfill missing: %v", env.InstanceNames())
	}
	// Unlink removes the instance's objects.
	mustExec(t, db, "UNLINK SUMMARY LateCluster FROM birds")
	env = db.StoredEnvelope("birds", 2)
	if env.Object("LateCluster") != nil {
		t.Error("unlink left objects behind")
	}
	if env.Object("ClassBird1") == nil {
		t.Error("unlink removed other instances' objects")
	}
}

func TestDropSummaryInstanceUnlinksEverywhere(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'note' ON birds WHERE id = 1")
	mustExec(t, db, "DROP SUMMARY INSTANCE SimCluster")
	env := db.StoredEnvelope("birds", 1)
	if env != nil && env.Object("SimCluster") != nil {
		t.Error("dropped instance still has objects")
	}
	if _, err := db.Catalog().Instance("SimCluster"); err == nil {
		t.Error("instance still registered")
	}
}

func TestRebuildSummariesMatchesIncremental(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'found eating stonewort' ON birds WHERE id = 1")
	mustExec(t, db, "ADD ANNOTATION 'influenza suspected in flock' ON birds WHERE id = 1")
	mustExec(t, db, "ADD ANNOTATION 'large wingspan measured' ON birds (wingspan) WHERE id = 1")
	incr := db.StoredEnvelope("birds", 1)
	steps, err := db.RebuildSummaries("birds")
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("rebuild did nothing")
	}
	rebuilt := db.StoredEnvelope("birds", 1)
	// Classifier and snippet objects must be identical; cluster grouping is
	// stream-order dependent but here insertion order matches.
	if !incr.Object("ClassBird1").Equal(rebuilt.Object("ClassBird1")) {
		t.Errorf("classifier diverged:\n%s\nvs\n%s",
			incr.Object("ClassBird1").Render(), rebuilt.Object("ClassBird1").Render())
	}
	if len(incr.Annotations()) != len(rebuilt.Annotations()) {
		t.Errorf("annotation sets differ: %v vs %v", incr.Annotations(), rebuilt.Annotations())
	}
}

func TestShowStatements(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'note one' ON birds WHERE id = 1")
	res := mustExec(t, db, "SHOW TABLES")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Str() != "birds" {
		t.Fatalf("SHOW TABLES = %v", res.Rows)
	}
	if !strings.Contains(res.Rows[0].Tuple[2].Str(), "ClassBird1") {
		t.Errorf("linked summaries = %q", res.Rows[0].Tuple[2].Str())
	}
	res = mustExec(t, db, "SHOW SUMMARIES")
	if len(res.Rows) != 3 {
		t.Fatalf("SHOW SUMMARIES = %d rows", len(res.Rows))
	}
	res = mustExec(t, db, "SHOW ANNOTATIONS ON birds")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[1].Int() != 1 {
		t.Fatalf("SHOW ANNOTATIONS = %v", res.Rows)
	}
}

func TestQueryTracedLogsStages(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'observed feeding at dawn' ON birds WHERE id = 1")
	res, err := db.Query(context.Background(), "SELECT name FROM birds WHERE id = 1", WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace entries")
	}
	stages := map[string]bool{}
	foundSummary := false
	for _, e := range res.Trace {
		stages[e.Stage] = true
		if e.Summary != "" {
			foundSummary = true
		}
	}
	if !stages["project"] {
		t.Errorf("stages = %v", stages)
	}
	if !foundSummary {
		t.Error("trace never captured a summary rendering")
	}
}

func TestExplainRendersPlanTree(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "CREATE TABLE sightings (sid INT, bird_id INT)")
	res := mustExec(t, db, `EXPLAIN SELECT b.name, s.sid FROM birds b, sightings s
		WHERE b.id = s.bird_id AND b.wingspan > 1 ORDER BY b.name LIMIT 5`)
	if res.Schema.Columns[0].Name != "plan" {
		t.Fatalf("schema = %v", res.Schema)
	}
	var lines []string
	for _, row := range res.Rows {
		lines = append(lines, row.Tuple[0].Str())
	}
	text := strings.Join(lines, "\n")
	for _, want := range []string{
		"Limit 5", "Sort", "Project+Curate", "HashJoin+MergeSummaries",
		"Filter", "Scan birds AS b", "Scan sightings AS s",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("plan missing %q:\n%s", want, text)
		}
	}
	// Indentation encodes the tree: the scans are deeper than the join.
	for _, l := range lines {
		if strings.Contains(l, "HashJoin") && !strings.HasPrefix(l, "    ") {
			t.Errorf("join at wrong depth: %q", l)
		}
	}
	// EXPLAIN of a summary-predicate query shows the SummaryFilter stage.
	res = mustExec(t, db, "EXPLAIN SELECT id FROM birds WHERE SUMMARY_TOTAL(ClassBird1) > 0")
	found := false
	for _, row := range res.Rows {
		if strings.Contains(row.Tuple[0].Str(), "SummaryFilter") {
			found = true
		}
	}
	if !found {
		t.Error("summary-predicate plan missing SummaryFilter stage")
	}
	// EXPLAIN of non-SELECT is rejected.
	if _, err := db.Exec(context.Background(), "EXPLAIN INSERT INTO birds VALUES (9, 'x', 'y', 1)"); err == nil {
		t.Error("EXPLAIN INSERT accepted")
	}
}

func TestCacheMissReexecutesQuery(t *testing.T) {
	// A cache too small for any result: every zoom-in re-executes.
	db, err := Open(Config{CacheDir: t.TempDir(), CacheBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecScript(context.Background(), `
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('x', 'y');
		TRAIN SUMMARY C ('alpha text', 'x'), ('beta text', 'y');
		LINK SUMMARY C TO t;
		ADD ANNOTATION 'alpha text here' ON t;
	`); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, "SELECT a FROM t")
	zoom, hit, err := db.ZoomIn(context.Background(), ZoomInRequest{QID: res.QID, Instance: "C", Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("impossible cache hit with 1-byte budget")
	}
	if len(zoom) != 1 || len(zoom[0].Annotations) != 1 {
		t.Fatalf("zoom = %+v", zoom)
	}
	if zoom[0].Annotations[0].Text != "alpha text here" {
		t.Errorf("annotation = %q", zoom[0].Annotations[0].Text)
	}
}

func TestDBWithLRUPolicy(t *testing.T) {
	db, err := Open(Config{CacheDir: t.TempDir(), CachePolicy: zoomin.LRU{}})
	if err != nil {
		t.Fatal(err)
	}
	if db.Cache().PolicyName() != "LRU" {
		t.Errorf("policy = %q", db.Cache().PolicyName())
	}
}

func TestSummaryBytesTracksStore(t *testing.T) {
	db := birdDB(t)
	if db.SummaryBytes("birds") != 0 {
		t.Error("empty store has bytes")
	}
	mustExec(t, db, "ADD ANNOTATION 'feeding observed at the lake' ON birds")
	if db.SummaryBytes("birds") <= 0 {
		t.Error("SummaryBytes did not grow")
	}
}

func TestInstanceFromStatementValidation(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT)")
	for _, bad := range []string{
		"CREATE SUMMARY INSTANCE c TYPE Histogram",
		"CREATE SUMMARY INSTANCE c TYPE Classifier",                     // no labels
		"CREATE SUMMARY INSTANCE c TYPE Cluster WITH (threshold = 2.0)", // bad threshold
		"CREATE SUMMARY INSTANCE c TYPE Snippet WITH (sentences = 0)",   // bad sentences
	} {
		if _, err := db.Exec(context.Background(), bad); err == nil {
			t.Errorf("Exec(%q) succeeded", bad)
		}
	}
	// Duplicate instance names rejected.
	mustExec(t, db, "CREATE SUMMARY INSTANCE ok TYPE Cluster")
	if _, err := db.Exec(context.Background(), "CREATE SUMMARY INSTANCE ok TYPE Cluster"); err == nil {
		t.Error("duplicate instance accepted")
	}
}

func TestMultiTableAnnotationScopedPerTable(t *testing.T) {
	db := testDB(t)
	if _, err := db.ExecScript(context.Background(), `
		CREATE TABLE a (x INT);
		CREATE TABLE b (x INT);
		INSERT INTO a VALUES (1);
		INSERT INTO b VALUES (1);
		CREATE SUMMARY INSTANCE C TYPE Cluster;
		LINK SUMMARY C TO a;
		ADD ANNOTATION 'only on a' ON a;
	`); err != nil {
		t.Fatal(err)
	}
	if db.StoredEnvelope("a", 1) == nil {
		t.Error("annotation missing on a")
	}
	if db.StoredEnvelope("b", 1) != nil {
		t.Error("annotation leaked to b")
	}
}
