package engine

// This file reproduces, end to end, the worked examples the demonstration
// paper illustrates: the Figure 2 SPJ query with pipelined summary
// propagation, the Figure 3 zoom-in commands, and the Figure 4
// extensibility hierarchy. Each test is the deterministic half of the
// corresponding experiment in DESIGN.md (E2, E9, E10).

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"insightnotes/internal/annotation"
	"insightnotes/internal/sql"
	"insightnotes/internal/summary"
)

// figure2DB assembles tables R(a,b,c,d) and S(x,y,z) with the paper's four
// summary instances and a Figure 2-shaped annotation population.
func figure2DB(t *testing.T) *DB {
	t.Helper()
	db := testDB(t)
	script := `
	CREATE TABLE R (a INT, b INT, c TEXT, d TEXT);
	CREATE TABLE S (x INT, y TEXT, z TEXT);
	INSERT INTO R VALUES (1, 2, 'c-val', 'd-val');
	INSERT INTO S VALUES (1, 'y-val', 'z-val');
	CREATE SUMMARY INSTANCE ClassBird1 TYPE Classifier
		LABELS ('Behavior', 'Disease', 'Anatomy', 'Other');
	TRAIN SUMMARY ClassBird1
		('found eating stonewort near shore', 'Behavior'),
		('observed feeding at dawn', 'Behavior'),
		('signs of avian influenza infection', 'Disease'),
		('wingspan measured large body', 'Anatomy'),
		('photo from trail camera attached', 'Other');
	CREATE SUMMARY INSTANCE ClassBird2 TYPE Classifier
		LABELS ('Provenance', 'Comment', 'Question');
	TRAIN SUMMARY ClassBird2
		('derived from experiment dataset source', 'Provenance'),
		('value looks wrong needs checking', 'Comment'),
		('is this the right species', 'Question');
	CREATE SUMMARY INSTANCE SimCluster TYPE Cluster WITH (threshold = 0.3, mergebysim = TRUE);
	CREATE SUMMARY INSTANCE TextSummary1 TYPE Snippet WITH (sentences = 1);
	LINK SUMMARY ClassBird1 TO R;
	LINK SUMMARY ClassBird2 TO R;
	LINK SUMMARY SimCluster TO R;
	LINK SUMMARY TextSummary1 TO R;
	LINK SUMMARY ClassBird2 TO S;
	LINK SUMMARY SimCluster TO S;
	`
	if _, err := db.ExecScript(context.Background(), script); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestFigure2WorkedExample drives the paper's example query
//
//	Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2
//
// over a Figure 2-shaped annotation population and verifies every effect
// the figure narrates.
func TestFigure2WorkedExample(t *testing.T) {
	db := figure2DB(t)

	annotate := func(text string, specs []TargetSpec) annotation.ID {
		t.Helper()
		id, _, err := db.AnnotateTargets(annotation.Annotation{Text: text, Author: "demo"}, specs)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	rCols := func(cols ...string) []TargetSpec { return []TargetSpec{{Table: "R", Columns: cols}} }
	sCols := func(cols ...string) []TargetSpec { return []TargetSpec{{Table: "S", Columns: cols}} }

	// --- R's annotations ---
	// Comments on kept columns (a, b): 4 of them.
	var keptComments []annotation.ID
	for i := 0; i < 4; i++ {
		keptComments = append(keptComments,
			annotate("value looks wrong needs checking again", rCols("a", "b")))
	}
	// Comments only on projected-out columns (c, d): 2 — their effect must
	// vanish at the projection step.
	annotate("value looks wrong here too", rCols("c", "d"))
	annotate("value needs checking on this field", rCols("c"))
	// A provenance note on (a).
	annotate("derived from experiment dataset", rCols("a"))
	// Snippet documents: Experiment E on (a, b); Wikipedia article on (c) —
	// the figure deletes the Wikipedia article at projection.
	if _, _, err := db.AnnotateTargets(annotation.Annotation{
		Text: "experiment writeup", Title: "Experiment E",
		Document: "Experiment E measured feeding rates. The rates were high near stonewort beds.",
	}, rCols("a", "b")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.AnnotateTargets(annotation.Annotation{
		Text: "wikipedia link", Title: "Wikipedia article",
		Document: "The swan goose is a large goose. It breeds in Mongolia and China.",
	}, rCols("c")); err != nil {
		t.Fatal(err)
	}

	// --- S's annotations ---
	// Comments on kept columns (x, z): 3.
	for i := 0; i < 3; i++ {
		annotate("value looks wrong check the record", sCols("x", "z"))
	}
	// A comment only on y: must vanish.
	annotate("value wrong on the y attribute only", sCols("y"))

	// --- shared annotations: attached to BOTH r and s (2 of them) ---
	for i := 0; i < 2; i++ {
		annotate("value looks wrong on both linked records",
			[]TargetSpec{{Table: "R", Columns: []string{"a", "b"}}, {Table: "S", Columns: []string{"x", "z"}}})
	}

	res := mustExec(t, db, "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.Tuple[0].Int() != 1 || row.Tuple[1].Int() != 2 || row.Tuple[2].Str() != "z-val" {
		t.Fatalf("tuple = %v", row.Tuple)
	}
	env := row.Env

	// (1) Projection curated away every annotation scoped to r.c, r.d, and
	// s.y: ClassBird2's Comment count is 4 (R kept) + 3 (S kept) +
	// 2 (shared, counted ONCE) = 9, not 11.
	cb2 := env.Object("ClassBird2")
	if cb2 == nil {
		t.Fatal("ClassBird2 missing from output")
	}
	r2 := cb2.Render()
	if !strings.Contains(r2, "(Comment, 9)") {
		t.Errorf("ClassBird2 = %s, want (Comment, 9) — shared annotations deduplicated", r2)
	}
	// Provenance = 2: the explicit provenance note plus the Experiment E
	// document annotation, whose body text also classifies as provenance.
	if !strings.Contains(r2, "(Provenance, 2)") {
		t.Errorf("ClassBird2 = %s, want (Provenance, 2)", r2)
	}

	// (2) ClassBird1 and TextSummary1 exist only on r and propagate
	// through the join without counterpart objects.
	cb1 := env.Object("ClassBird1")
	if cb1 == nil || cb1.Len() == 0 {
		t.Error("ClassBird1 did not propagate")
	}
	snp := env.Object("TextSummary1")
	if snp == nil || snp.Len() != 1 {
		t.Fatalf("TextSummary1 = %v", snp)
	}
	sr := snp.Render()
	if !strings.Contains(sr, "Experiment E") {
		t.Errorf("snippet = %s, want Experiment E kept", sr)
	}
	if strings.Contains(sr, "Wikipedia") {
		t.Errorf("snippet = %s, want Wikipedia article deleted at projection", sr)
	}

	// (3) SimCluster merged across the join: overlapping/similar comment
	// groups combined (mergebysim), totals reflect deduplication.
	clu := env.Object("SimCluster")
	if clu == nil {
		t.Fatal("SimCluster missing")
	}
	// 4 R comments + 3 S comments + 2 shared + 1 provenance + 2 doc
	// annotations' texts... cluster members = every surviving annotation
	// summarized under SimCluster: 4+3+2+1(provenance)+1(experiment doc,
	// text "experiment writeup") = 11.
	if clu.Len() != 11 {
		t.Errorf("SimCluster members = %d, want 11: %s", clu.Len(), clu.Render())
	}

	// (4) The join column s.x was projected out at the end: output has 3
	// columns and no coverage bit beyond them.
	if len(row.Tuple) != 3 {
		t.Errorf("output width = %d", len(row.Tuple))
	}
	for id, cover := range env.Cover {
		for i := 3; i < 64; i++ {
			if cover.Has(i) {
				t.Errorf("annotation %d covers dropped column %d", id, i)
			}
		}
	}
}

// TestFigure2ClusterRepReplacement reproduces the A5-replaces-A2 detail:
// projecting out the column holding a cluster representative elects a new
// representative from the surviving members.
func TestFigure2ClusterRepReplacement(t *testing.T) {
	db := figure2DB(t)
	// Build one similar-content group: two annotations on kept columns,
	// and one — textually the most central — only on column c.
	mk := func(text string, cols ...string) annotation.ID {
		id, _, err := db.AnnotateTargets(annotation.Annotation{Text: text},
			[]TargetSpec{{Table: "R", Columns: cols}})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	mk("swan feeding stonewort lake", "a")
	mk("swan feeding stonewort lake shore", "b")
	repCandidate := mk("swan feeding stonewort lake shore observed", "c")

	stored := db.StoredEnvelope("R", 1)
	cluBefore := stored.Object("SimCluster").(interface {
		Representatives() []annotation.ID
	})
	_ = cluBefore

	res := mustExec(t, db, "SELECT a, b FROM R")
	env := res.Rows[0].Env
	clu := env.Object("SimCluster")
	if clu == nil || clu.Len() != 2 {
		t.Fatalf("cluster after projection = %v", clu)
	}
	for _, id := range clu.Members() {
		if id == repCandidate {
			t.Error("annotation on projected-out column survived")
		}
	}
	// A representative exists and is drawn from the survivors.
	reps := clu.(interface{ Representatives() []annotation.ID }).Representatives()
	if len(reps) == 0 || reps[0] == repCandidate {
		t.Errorf("representative not re-elected: %v", reps)
	}
}

// TestFigure3ZoomInCommands reproduces both zoom-in commands of Figure 3:
// retrieving the refuting annotations on matched tuples and retrieving a
// complete attached article.
func TestFigure3ZoomInCommands(t *testing.T) {
	db := testDB(t)
	script := `
	CREATE TABLE t (c1 TEXT, c2 TEXT, c3 INT);
	INSERT INTO t VALUES ('x', 'p', 5), ('x', 'q', 10), ('y', 'r', 7);
	CREATE SUMMARY INSTANCE NaiveBayesClass TYPE Classifier LABELS ('refute', 'approve');
	TRAIN SUMMARY NaiveBayesClass
		('value is wrong invalid experiment needs verification', 'refute'),
		('confirmed verified correct approved', 'approve');
	CREATE SUMMARY INSTANCE TextSummary TYPE Snippet WITH (sentences = 1);
	LINK SUMMARY NaiveBayesClass TO t;
	LINK SUMMARY TextSummary TO t;
	ADD ANNOTATION 'Value 5 is wrong' ON t WHERE c3 = 5;
	ADD ANNOTATION 'Needs verification' ON t WHERE c3 = 10;
	ADD ANNOTATION 'Invalid experiment' ON t WHERE c3 = 10;
	ADD ANNOTATION 'approved and confirmed by curator' ON t WHERE c3 = 5;
	ADD ANNOTATION 'approved reference confirmed' TITLE 'Wikipedia article'
		DOCUMENT 'Full wikipedia article body. It has every detail.' ON t WHERE c3 = 5;
	ADD ANNOTATION 'verified correct approved writeup' TITLE 'Experiment E'
		DOCUMENT 'Experiment E full writeup. Methods and results.' ON t WHERE c3 = 5;
	`
	if _, err := db.ExecScript(context.Background(), script); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, "SELECT c1, c2, c3 FROM t")
	qid := res.QID

	// Figure 3(a): ZoomIn Reference QID Where C1 = 'x' On NaiveBayesClass
	// Index 1 → the refuting annotations: one on r1, two on r2.
	zoomA := mustExec(t, db, sqlZoom(qid, "WHERE c1 = 'x'", "NaiveBayesClass", 1))
	if zoomA.Count != 3 {
		t.Fatalf("zoom (a) retrieved %d annotations, want 3: %v", zoomA.Count, zoomA.Message)
	}
	texts := map[string]bool{}
	for _, zr := range zoomA.ZoomAnnotations {
		for _, a := range zr.Annotations {
			texts[a.Text] = true
		}
	}
	for _, want := range []string{"Value 5 is wrong", "Needs verification", "Invalid experiment"} {
		if !texts[want] {
			t.Errorf("refuting annotation %q missing; got %v", want, texts)
		}
	}
	if texts["approved and confirmed by curator"] {
		t.Error("approving annotation returned by refute zoom")
	}

	// Figure 3(b): ZoomIn ... Where C3 = 5 On TextSummary Index 2 → the
	// complete Wikipedia article on r1 (entries in id order: Experiment E
	// doc was added after the wiki doc, so order by annotation id:
	// wiki=5, experiment=6 → index 2 is Experiment E).
	zoomB := mustExec(t, db, sqlZoom(qid, "WHERE c3 = 5", "TextSummary", 2))
	if zoomB.Count != 1 {
		t.Fatalf("zoom (b) retrieved %d annotations", zoomB.Count)
	}
	doc := zoomB.ZoomAnnotations[0].Annotations[0]
	if doc.Title != "Experiment E" || !strings.Contains(doc.Document, "full writeup") {
		t.Errorf("zoom (b) = %+v", doc)
	}
	// Index 1 is the Wikipedia article, returned with its full body.
	zoomC := mustExec(t, db, sqlZoom(qid, "WHERE c3 = 5", "TextSummary", 1))
	if zoomC.Count != 1 || zoomC.ZoomAnnotations[0].Annotations[0].Title != "Wikipedia article" {
		t.Fatalf("zoom (c) = %+v", zoomC.ZoomAnnotations)
	}
	if !strings.Contains(zoomC.ZoomAnnotations[0].Annotations[0].Document, "every detail") {
		t.Error("zoom did not return the complete document")
	}

	// Out-of-range index errors.
	if _, err := db.Exec(context.Background(), sqlZoom(qid, "", "NaiveBayesClass", 9)); err == nil {
		t.Error("bad index accepted")
	}
	// Unknown QID errors.
	if _, err := db.Exec(context.Background(), sqlZoom(99999, "", "NaiveBayesClass", 1)); err == nil {
		t.Error("unknown QID accepted")
	}
}

func sqlZoom(qid int, where, instance string, index int) string {
	s := fmt.Sprintf("ZOOMIN REFERENCE QID %d", qid)
	if where != "" {
		s += " " + where
	}
	return fmt.Sprintf("%s ON %s INDEX %d", s, instance, index)
}

// TestFigure4ExtensibilityHierarchy exercises the three-level hierarchy:
// built-in types, admin-defined instances with properties and training
// models, and many-to-many links whose changes reflect in the maintained
// objects.
func TestFigure4ExtensibilityHierarchy(t *testing.T) {
	db := testDB(t)
	script := `
	CREATE TABLE genes (gid INT, symbol TEXT);
	CREATE TABLE birds (id INT, name TEXT);
	INSERT INTO genes VALUES (1, 'BRCA2');
	INSERT INTO birds VALUES (1, 'Swan Goose');
	CREATE SUMMARY INSTANCE GeneClass TYPE Classifier
		LABELS ('FunctionPrediction', 'Provenance', 'Comment');
	TRAIN SUMMARY GeneClass
		('predicted to regulate dna repair function', 'FunctionPrediction'),
		('imported from genbank release', 'Provenance'),
		('please double check this entry', 'Comment');
	CREATE SUMMARY INSTANCE BirdClass TYPE Classifier
		LABELS ('Behavior', 'Disease', 'Anatomy', 'Other');
	TRAIN SUMMARY BirdClass
		('feeding behavior observed', 'Behavior'),
		('influenza infection signs', 'Disease'),
		('wingspan and body size', 'Anatomy'),
		('miscellaneous note', 'Other');
	`
	if _, err := db.ExecScript(context.Background(), script); err != nil {
		t.Fatal(err)
	}
	// Level 2: instances are registered with their configuration.
	in, err := db.Catalog().Instance("GeneClass")
	if err != nil {
		t.Fatal(err)
	}
	if in.Type != summary.TypeClassifier || !in.Props.SummarizeOnce() {
		t.Errorf("instance config = %+v", in.Props)
	}
	// Many-to-many: one instance on two relations, two instances on one.
	for _, stmt := range []string{
		"LINK SUMMARY GeneClass TO genes",
		"LINK SUMMARY GeneClass TO birds",
		"LINK SUMMARY BirdClass TO birds",
	} {
		mustExec(t, db, stmt)
	}
	if got := db.Catalog().TablesFor("GeneClass"); len(got) != 2 {
		t.Errorf("TablesFor = %v", got)
	}
	mustExec(t, db, "ADD ANNOTATION 'imported from genbank release 42' ON genes")
	mustExec(t, db, "ADD ANNOTATION 'feeding behavior observed at dawn' ON birds")
	// Level 3: each linked relation's tuples carry the instance's objects.
	if env := db.StoredEnvelope("genes", 1); env.Object("GeneClass") == nil {
		t.Error("genes tuple missing GeneClass object")
	}
	env := db.StoredEnvelope("birds", 1)
	if env.Object("GeneClass") == nil || env.Object("BirdClass") == nil {
		t.Errorf("birds tuple objects = %v", env.InstanceNames())
	}
	// Different instances classify the same annotation under their own
	// label sets.
	if !strings.Contains(env.Object("BirdClass").Render(), "(Behavior, 1)") {
		t.Errorf("BirdClass = %s", env.Object("BirdClass").Render())
	}
}

// TestZoomInProgrammaticWhere exercises the programmatic ZoomIn API with a
// parsed predicate.
func TestZoomInProgrammaticWhere(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'influenza infection suspected' ON birds WHERE id = 2")
	res := mustExec(t, db, "SELECT id, name FROM birds")
	stmt, _ := sql.Parse("SELECT x FROM t WHERE id = 2")
	where := stmt.(*sql.Select).Where
	out, hit, err := db.ZoomIn(context.Background(), ZoomInRequest{QID: res.QID, Where: where, Instance: "ClassBird1", Index: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("expected cache hit immediately after query")
	}
	if len(out) != 1 || len(out[0].Annotations) != 1 {
		t.Fatalf("zoom = %+v", out)
	}
	if out[0].Annotations[0].Text != "influenza infection suspected" {
		t.Errorf("annotation = %q", out[0].Annotations[0].Text)
	}
}
