package engine

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// populateForSnapshot builds a database with every persistable feature:
// tables (with an index and a deleted row, so ids have gaps), instances
// of all three types with a trained model, links, multi-target
// annotations, and documents.
func populateForSnapshot(t *testing.T) *DB {
	t.Helper()
	db := birdDB(t)
	mustExec(t, db, "CREATE INDEX ON birds (name)")
	mustExec(t, db, "ADD ANNOTATION 'observed feeding at dawn' ON birds WHERE id = 1")
	mustExec(t, db, "ADD ANNOTATION 'signs of avian influenza' ON birds (wingspan) WHERE id = 1")
	mustExec(t, db, `ADD ANNOTATION 'article' TITLE 'Field report'
		DOCUMENT 'Feeding was heavy. Counts were high. Weather was mild.' ON birds WHERE id = 2`)
	// Multi-tuple annotation and a row deletion (id gap).
	mustExec(t, db, "ADD ANNOTATION 'migration route shared note' ON birds")
	mustExec(t, db, "DELETE FROM birds WHERE id = 3")
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := populateForSnapshot(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	// Data survives, including the id gap.
	q1 := mustExec(t, db, "SELECT id, name, wingspan FROM birds ORDER BY id")
	q2 := mustExec(t, back, "SELECT id, name, wingspan FROM birds ORDER BY id")
	if len(q1.Rows) != len(q2.Rows) {
		t.Fatalf("row counts: %d vs %d", len(q1.Rows), len(q2.Rows))
	}
	for i := range q1.Rows {
		if !q1.Rows[i].Tuple.EqualOn(q2.Rows[i].Tuple, nil) {
			t.Errorf("row %d: %v vs %v", i, q1.Rows[i].Tuple, q2.Rows[i].Tuple)
		}
	}

	// Summary objects rebuilt identically (same replay order).
	for _, row := range []int{1, 2} {
		a := db.StoredEnvelope("birds", annRow(row))
		b := back.StoredEnvelope("birds", annRow(row))
		if (a == nil) != (b == nil) {
			t.Fatalf("row %d envelope presence differs", row)
		}
		if a != nil && !a.Equal(b) {
			t.Errorf("row %d summaries differ:\n%s\nvs\n%s", row, a.Render(), b.Render())
		}
	}

	// Raw annotations and counts.
	if db.Annotations().Count() != back.Annotations().Count() {
		t.Errorf("annotation counts: %d vs %d", db.Annotations().Count(), back.Annotations().Count())
	}

	// Instances, links, and trained models survive: classification of new
	// text agrees.
	mustExec(t, back, "ADD ANNOTATION 'lesions suggest avian pox virus' ON birds WHERE id = 2")
	env := back.StoredEnvelope("birds", 2)
	if env == nil || !strings.Contains(env.Object("ClassBird1").Render(), "(Disease, 1)") {
		t.Errorf("restored classifier misbehaves: %v", env)
	}

	// Index survives.
	tbl, _ := back.Catalog().Table("birds")
	if tbl.Index("name") == nil {
		t.Error("index not restored")
	}

	// New ids continue past the persisted maximum.
	res := mustExec(t, back, "ADD ANNOTATION 'observed feeding again' ON birds WHERE id = 1")
	if !strings.Contains(res.Message, "annotation 6 ") {
		t.Errorf("next id wrong: %q", res.Message)
	}

	// Zoom-in works against the restored store.
	q := mustExec(t, back, "SELECT id, name FROM birds WHERE id = 1")
	zoom := mustExec(t, back, sqlZoom(q.QID, "", "ClassBird1", 1))
	if zoom.Count == 0 {
		t.Error("zoom-in on restored db returned nothing")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	db := populateForSnapshot(t)
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path, Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if back.Annotations().Count() != db.Annotations().Count() {
		t.Error("file round trip lost annotations")
	}
	// Overwrite is atomic and repeatable.
	if err := back.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	for _, bad := range []string{
		"not json",
		`{"version": 99}`,
		`{"version": 1, "tables": [{"name": "t", "columns": [{"name": "a", "kind": 200}]}]}`,
	} {
		if _, err := Load(strings.NewReader(bad), Config{CacheDir: t.TempDir()}); err == nil {
			t.Errorf("Load(%q) succeeded", bad)
		}
	}
}

func TestSnapshotEmptyDatabase(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Catalog().TableNames(); len(got) != 0 {
		t.Errorf("tables = %v", got)
	}
}
