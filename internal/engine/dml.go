package engine

import (
	"fmt"

	"insightnotes/internal/annotation"
	"insightnotes/internal/catalog"
	"insightnotes/internal/exec"
	"insightnotes/internal/sql"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// execUpdate runs UPDATE ... SET ... WHERE. Annotations annotate tuple
// identity, so they stay attached to updated tuples; summary objects are
// unchanged (the data changed, not the metadata).
func (db *DB) execUpdate(s *sql.Update) (*Result, error) {
	tbl, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	type assign struct {
		col  int
		expr *exec.Compiled
	}
	assigns := make([]assign, len(s.Set))
	for i, set := range s.Set {
		ci, err := schema.ColumnIndex(set.Column)
		if err != nil {
			return nil, err
		}
		c, err := exec.Compile(set.Value, schema)
		if err != nil {
			return nil, err
		}
		assigns[i] = assign{col: ci, expr: c}
	}
	rows, err := db.matchRows(tbl, s.Where)
	if err != nil {
		return nil, err
	}
	// The WAL record carries post-images, not the SET expressions: replay
	// must not depend on re-matching the WHERE clause against a state
	// that later records will change.
	images := make([]snapshotRow, 0, len(rows))
	for _, row := range rows {
		tu, err := tbl.Get(row)
		if err != nil {
			return nil, err
		}
		updated := tu.Clone()
		for _, a := range assigns {
			v, err := a.expr.Eval(tu)
			if err != nil {
				return nil, err
			}
			updated[a.col] = v
		}
		if err := tbl.Update(row, updated); err != nil {
			return nil, err
		}
		images = append(images, snapshotRow{ID: row, Values: updated})
	}
	if err := db.logRecord(walTypeUpdate, walRows{Table: tbl.Name(), Rows: images}); err != nil {
		return nil, err
	}
	return &Result{
		Message: fmt.Sprintf("%d row(s) updated in %s", len(rows), tbl.Name()),
		Count:   len(rows),
	}, nil
}

// execDelete runs DELETE FROM ... WHERE. Deleted tuples' annotations are
// detached; annotations attached nowhere else are removed entirely, and
// the tuples' summary envelopes are dropped.
func (db *DB) execDelete(s *sql.Delete) (*Result, error) {
	tbl, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	// A queued task for a deleted row would recreate its envelope after
	// the delete dropped it; catch up first.
	db.drainMaintenance()
	rows, err := db.matchRows(tbl, s.Where)
	if err != nil {
		return nil, err
	}
	orphanedTotal := 0
	for _, row := range rows {
		orphaned, err := db.deleteRow(tbl, row)
		if err != nil {
			return nil, err
		}
		orphanedTotal += len(orphaned)
	}
	if err := db.logRecord(walTypeDelete, walDelete{Table: tbl.Name(), Rows: rows}); err != nil {
		return nil, err
	}
	msg := fmt.Sprintf("%d row(s) deleted from %s", len(rows), tbl.Name())
	if orphanedTotal > 0 {
		msg += fmt.Sprintf(" (%d orphaned annotation(s) removed)", orphanedTotal)
	}
	return &Result{Message: msg, Count: len(rows)}, nil
}

// deleteRow deletes one row, detaches its annotations, and drops its
// summary envelope, returning the annotation ids orphaned by the
// deletion. Shared by DELETE execution and WAL replay. Callers hold the
// exclusive statement lock.
func (db *DB) deleteRow(tbl *catalog.Table, row types.RowID) ([]annotation.ID, error) {
	if err := tbl.Delete(row); err != nil {
		return nil, err
	}
	_, orphaned, err := db.anns.DetachRow(tbl.Name(), row)
	if err != nil {
		return nil, err
	}
	db.envs.deleteRow(tbl.Name(), row)
	db.mu.Lock()
	for _, id := range orphaned {
		db.dropDigestsLocked(id)
	}
	db.mu.Unlock()
	return orphaned, nil
}

// DropAnnotation retracts one annotation: the raw record and its targets
// are deleted, and its effect is curated out of every maintained summary
// object — classifier counts decrement, cluster groups shrink and re-elect
// representatives, snippets disappear.
func (db *DB) DropAnnotation(id annotation.ID) error {
	db.stmtMu.Lock()
	err := db.dropAnnotation(id)
	if err == nil {
		err = db.logRecord(walTypeDropAnnotation, walDropAnnotation{ID: id})
	}
	tok := db.takePendingSync()
	db.stmtMu.Unlock()
	if serr := db.syncWAL(tok); err == nil {
		err = serr
	}
	return err
}

func (db *DB) dropAnnotation(id annotation.ID) error {
	// The retraction curates the annotation out of envelopes; a queued
	// task for it would add it back afterwards. Catch up first.
	db.drainMaintenance()
	targets, err := db.anns.Remove(id)
	if err != nil {
		return err
	}
	seen := map[string]map[types.RowID]bool{}
	for _, tg := range targets {
		if seen[tg.Table] == nil {
			seen[tg.Table] = map[types.RowID]bool{}
		}
		if seen[tg.Table][tg.Row] {
			continue
		}
		seen[tg.Table][tg.Row] = true
		db.envs.mutate(tg.Table, tg.Row, func(env *summary.Envelope) bool {
			env.RemoveAnnotation(id)
			return env.IsEmpty()
		})
	}
	db.mu.Lock()
	db.dropDigestsLocked(id)
	db.mu.Unlock()
	return nil
}

// dropDigestsLocked evicts an annotation's cached digests. Requires db.mu.
func (db *DB) dropDigestsLocked(id annotation.ID) {
	for _, byAnn := range db.digests {
		delete(byAnn, id)
	}
}
