package engine

import (
	"context"
	"fmt"
	"testing"

	"insightnotes/internal/plan"
	"insightnotes/internal/types"
)

// storageBenchDB builds kv(k INT, v TEXT) with n rows (k = 0..n-1, unique)
// and a secondary index on k. Rows are loaded through the catalog directly
// so the 1M-row fixture builds in seconds instead of parsing a million
// INSERT statements; the benchmarked queries run the full engine path.
func storageBenchDB(b *testing.B, n int) *DB {
	b.Helper()
	db, err := Open(Config{CacheDir: b.TempDir(), DisableMetrics: true})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), "CREATE TABLE kv (k INT, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	tbl, err := db.cat.Table("kv")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(types.Tuple{
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("value-%d", i)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tbl.CreateIndex("k"); err != nil {
		b.Fatal(err)
	}
	return db
}

// accessPaths are the two sides of every storage benchmark: the cost-based
// default (which picks the index for the selective predicates below) and a
// forced sequential scan.
var accessPaths = []struct {
	name string
	opts []StatementOption
}{
	{"index", nil},
	{"fullscan", []StatementOption{WithPlanOptions(plan.Options{DisableIndexScan: true})}},
}

// BenchmarkStoragePointLookup measures a single-row equality lookup on the
// indexed column — B+tree seek vs full heap scan — at three table sizes.
// Recorded in EXPERIMENTS.md (E15).
func BenchmarkStoragePointLookup(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		db := storageBenchDB(b, n)
		for _, path := range accessPaths {
			b.Run(fmt.Sprintf("rows=%d/%s", n, path.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					k := (i * 7919) % n
					res, err := db.Query(context.Background(),
						fmt.Sprintf("SELECT v FROM kv WHERE k = %d", k), path.opts...)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) != 1 {
						b.Fatalf("k=%d returned %d rows, want 1", k, len(res.Rows))
					}
				}
			})
		}
		db.Close()
	}
}

// BenchmarkStorageRangeScan measures a 100-row range predicate on the
// indexed column — B+tree range scan vs full heap scan. Recorded in
// EXPERIMENTS.md (E15).
func BenchmarkStorageRangeScan(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		db := storageBenchDB(b, n)
		for _, path := range accessPaths {
			b.Run(fmt.Sprintf("rows=%d/%s", n, path.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					lo := (i * 7919) % (n - 100)
					res, err := db.Query(context.Background(),
						fmt.Sprintf("SELECT v FROM kv WHERE k BETWEEN %d AND %d", lo, lo+99), path.opts...)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) != 100 {
						b.Fatalf("range [%d,%d] returned %d rows, want 100", lo, lo+99, len(res.Rows))
					}
				}
			})
		}
		db.Close()
	}
}
