package engine

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"sync"
	"time"
)

// OpStat is the per-operator runtime row attached to results and slow-query
// entries: the operator's metric label plus its lifetime counters.
type OpStat struct {
	Op         string `json:"op"`
	Rows       int64  `json:"rows"`
	Batches    int64  `json:"batches,omitempty"`
	Merges     int64  `json:"merges,omitempty"`
	Curates    int64  `json:"curates,omitempty"`
	WallMicros int64  `json:"wall_us,omitempty"`
	// Workers and Morsels are set by morsel-parallel scans: the worker pool
	// size and the number of morsels its workers processed.
	Workers int   `json:"workers,omitempty"`
	Morsels int64 `json:"morsels,omitempty"`
}

// SlowQueryEntry is one structured slow-query record: everything needed to
// understand an outlier statement after the fact without re-running it.
type SlowQueryEntry struct {
	// TSMicros is the entry's wall-clock timestamp (µs since the epoch).
	TSMicros int64 `json:"ts_us"`
	// Statement is the original statement text.
	Statement string `json:"stmt"`
	// Kind is the statement-kind metric label (select, insert, zoomin, …).
	Kind string `json:"kind"`
	// WallMicros is the statement's elapsed wall time in microseconds.
	WallMicros int64 `json:"wall_us"`
	// QueueWaitMicros is the admission-queue wait before execution began
	// (0 when the statement never queued — embedded use, or instant admit).
	QueueWaitMicros int64 `json:"queue_wait_us,omitempty"`
	// TraceID cross-links the statement's lifecycle trace (empty when
	// tracing is disabled); slow statements are always retained, so a slow
	// entry's trace is fetchable via SHOW TRACE or /traces until evicted.
	TraceID string `json:"trace_id,omitempty"`
	// Rows is the number of result rows returned (0 on error).
	Rows int `json:"rows"`
	// OpRows, Merges, and Curates are the statement-wide pipeline totals.
	OpRows  int64 `json:"op_rows"`
	Merges  int64 `json:"merges"`
	Curates int64 `json:"curates"`
	// Error is the statement's error text, empty on success.
	Error string `json:"error,omitempty"`
	// Cancelled records why the statement was aborted, when it was:
	// "cancel" for context cancellation, "deadline" for an expired
	// deadline, empty otherwise.
	Cancelled string `json:"cancelled,omitempty"`
	// Ops holds the per-operator breakdown of a SELECT's plan.
	Ops []OpStat `json:"ops,omitempty"`
}

// SlowQuerySink receives slow-query entries. Implementations must be safe
// for concurrent use; EmitSlowQuery is called synchronously on the
// statement's goroutine, so sinks should be fast or buffer internally.
type SlowQuerySink interface {
	EmitSlowQuery(SlowQueryEntry)
}

// jsonSlowQueryLog writes one JSON object per line, the conventional
// machine-readable slow-query log format.
type jsonSlowQueryLog struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSlowQueryLog returns a sink writing newline-delimited JSON entries
// to w. Writes are serialized; encoding errors are dropped (an observability
// channel must never fail a statement).
func NewJSONSlowQueryLog(w io.Writer) SlowQuerySink {
	return &jsonSlowQueryLog{enc: json.NewEncoder(w)}
}

func (l *jsonSlowQueryLog) EmitSlowQuery(e SlowQueryEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(e)
}

// cancellationCause classifies an execution error as a cancellation kind
// for metrics and the slow-query log.
func cancellationCause(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.Canceled):
		return "cancel"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return ""
	}
}

// slowQueryEntry assembles the structured record for one finished statement.
func slowQueryEntry(kind, sqlText string, wall time.Duration, res *Result, err error, traceID string, queueWait time.Duration) SlowQueryEntry {
	e := SlowQueryEntry{
		TSMicros:        time.Now().UnixMicro(),
		Statement:       sqlText,
		Kind:            kind,
		WallMicros:      wall.Microseconds(),
		QueueWaitMicros: queueWait.Microseconds(),
		TraceID:         traceID,
		Cancelled:       cancellationCause(err),
	}
	if err != nil {
		e.Error = err.Error()
	}
	if res != nil {
		e.Rows = len(res.Rows)
		e.Ops = res.Ops
		if res.Stats != nil {
			e.OpRows = res.Stats.OpRows
			e.Merges = res.Stats.Merges
			e.Curates = res.Stats.Curates
		}
	}
	return e
}
