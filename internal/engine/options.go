package engine

import (
	"runtime"
	"time"

	"insightnotes/internal/plan"
	"insightnotes/internal/trace"
)

// StatementOption tunes one statement execution. The context-first entry
// points (Query, Exec, ExecScript, ExecStatement) accept any number of
// options; the zero set executes with the engine-wide defaults.
type StatementOption func(*stmtOptions)

// stmtOptions is the resolved option set of one statement.
type stmtOptions struct {
	trace bool
	// planOpts, when non-nil, replaces the engine-wide plan options for
	// this statement (the benchmark ablation switches).
	planOpts *plan.Options
	// parallelism overrides the scan worker count (0 = engine default).
	parallelism int
	// batchSize overrides the executor batch size (0 = engine default).
	batchSize int
	// lifecycle is the statement's active lifecycle trace. The server seeds
	// it (WithActiveTrace) so its queue-wait span and the engine's spans land
	// in one trace; when nil and tracing is enabled, the engine starts one.
	lifecycle *trace.Active
	// queueWait is the admission-queue wait the server measured before
	// dispatching this statement (surfaced in stats and the slow-query log).
	queueWait time.Duration
	// memo, when non-nil, is the plan-cache access-path memo for this
	// statement (set internally by the cache consult; never by a public
	// option). planCacheAttr records the consult outcome ("hit"/"miss")
	// for the stmt.plan span.
	memo          *plan.PathMemo
	planCacheAttr string
}

func gatherOptions(opts []StatementOption) stmtOptions {
	var so stmtOptions
	for _, o := range opts {
		o(&so)
	}
	return so
}

// WithTrace enables the under-the-hood operator log for this statement:
// every pipeline stage records its intermediate tuples and their summary
// renderings into Result.Trace (the Figure 5 view).
func WithTrace() StatementOption {
	return func(so *stmtOptions) { so.trace = true }
}

// WithPlanOptions replaces the engine-wide plan options for this statement
// — the ablation switches used by benchmarks and tests. A SELECT carrying
// explicit plan options is not registered under a QID and never touches the
// zoom-in cache, so ablated plans cannot pollute zoom-in state.
func WithPlanOptions(po plan.Options) StatementOption {
	return func(so *stmtOptions) { so.planOpts = &po }
}

// WithParallelism sets this statement's scan worker count: 1 forces serial
// execution, n > 1 plans full table scans as morsel-parallel with n
// workers. Values below 1 are treated as 1.
func WithParallelism(n int) StatementOption {
	if n < 1 {
		n = 1
	}
	return func(so *stmtOptions) { so.parallelism = n }
}

// WithBatchSize sets this statement's executor batch size (rows per
// operator NextBatch call). Values below 1 fall back to the engine default.
func WithBatchSize(n int) StatementOption {
	return func(so *stmtOptions) { so.batchSize = n }
}

// WithActiveTrace attaches an already-started lifecycle trace to this
// statement instead of letting the engine start its own — the server uses
// it so wire-level spans (admission-queue wait) and engine spans share one
// trace. The engine finishes the trace when the statement completes.
func WithActiveTrace(at *trace.Active) StatementOption {
	return func(so *stmtOptions) { so.lifecycle = at }
}

// WithQueueWait records the admission-queue wait the caller measured before
// dispatching this statement; it is surfaced in StatementStats and
// slow-query log entries.
func WithQueueWait(d time.Duration) StatementOption {
	return func(so *stmtOptions) { so.queueWait = d }
}

// parallelism resolves the scan worker count for one statement: the
// per-statement override wins, then Config.ExecWorkers, where 0 means
// GOMAXPROCS (parallel scans on by default) and 1 keeps every scan serial.
func (db *DB) parallelism(so stmtOptions) int {
	n := db.cfg.ExecWorkers
	if so.parallelism > 0 {
		n = so.parallelism
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// planOptions resolves the plan options for one statement: the engine-wide
// configuration unless the statement overrides it, with the statement's
// trace flag and resolved parallelism applied on top. An explicit
// Parallelism inside WithPlanOptions is honored as-is.
func (db *DB) planOptions(so stmtOptions) plan.Options {
	opts := db.cfg.PlanOptions
	if so.planOpts != nil {
		opts = *so.planOpts
	}
	opts.Trace = so.trace
	if so.parallelism > 0 {
		opts.Parallelism = so.parallelism
	} else if opts.Parallelism == 0 {
		opts.Parallelism = db.parallelism(so)
	}
	return opts
}
