// Package engine assembles the InsightNotes system: the relational
// substrate (catalog, storage, executor), the raw-annotation store, the
// summary store with incremental maintenance and the summarize-once
// optimization, QID-registered query execution with summary propagation,
// and zoom-in processing over the RCO-managed materialization cache.
//
// DB is the public entry point; the root package insightnotes re-exports
// it as the library API.
package engine

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"insightnotes/internal/annotation"
	"insightnotes/internal/catalog"
	"insightnotes/internal/metrics"
	"insightnotes/internal/plan"
	"insightnotes/internal/storage"
	"insightnotes/internal/summary"
	"insightnotes/internal/trace"
	"insightnotes/internal/types"
	"insightnotes/internal/wal"
	"insightnotes/internal/zoomin"
)

// Version is the engine version reported by insightnotes_build_info.
const Version = "0.9.0"

// DefaultTraceSample is the default probability that a statement is
// promoted to detailed span collection — and therefore the retention
// probability for ordinary (neither slow nor errored) statement traces.
const DefaultTraceSample = 0.05

// Config tunes a DB instance. The zero value plus defaults gives an
// in-memory engine with a temp-dir zoom-in cache.
type Config struct {
	// PoolFrames is the buffer-pool capacity in 8 KiB frames (default 256).
	PoolFrames int
	// PageFile, when set, backs the buffer pool with a file-based page
	// store at this path instead of the in-memory store, so heap pages
	// (tables, annotations, envelope records) spill to disk when the
	// working set outgrows PoolFrames. The file is a paging layer, not a
	// recovery source — Open truncates any existing file; the WAL and
	// snapshot remain the durable source of truth. OpenDurable defaults it
	// to <dir>/pages.db.
	PageFile string
	// CacheDir is the zoom-in materialization directory (default: a fresh
	// temp directory).
	CacheDir string
	// CacheBudget bounds the zoom-in cache in bytes (default 4 MiB).
	CacheBudget int64
	// CachePolicy selects the replacement policy (default RCO).
	CachePolicy zoomin.Policy
	// PlanOptions are applied to every query (ablation switches).
	PlanOptions plan.Options
	// PlanCacheSize bounds the engine plan cache in entries: 0 means
	// plan.DefaultCacheSize, negative disables plan caching entirely
	// (every statement re-parses and re-costs; prepared statements still
	// work, they just lose the cache). See prepared.go.
	PlanCacheSize int
	// ExecWorkers is the scan worker count for morsel-driven parallel
	// execution: 0 means GOMAXPROCS (parallel scans on by default), 1 keeps
	// every scan serial, n > 1 uses exactly n workers. Per-statement
	// WithParallelism overrides it.
	ExecWorkers int
	// BatchSize is the executor's rows-per-batch pipeline granularity
	// (default exec.DefaultBatchSize). Per-statement WithBatchSize
	// overrides it.
	BatchSize int
	// DisableSummarizeOnce turns off the invariant-driven digest cache,
	// for the E5 ablation.
	DisableSummarizeOnce bool
	// DisableMetrics turns off the metrics registry entirely: no counters
	// are registered and every observation path is a no-op. For overhead
	// benchmarks and minimal embedded use.
	DisableMetrics bool
	// SlowQueryThreshold, when positive, marks statements whose wall time
	// reaches it as slow: they increment the slow-query counter and are
	// emitted to SlowQueryLog.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives structured entries for slow statements (nil
	// disables emission; the counter still counts). See NewJSONSlowQueryLog.
	SlowQueryLog SlowQuerySink
	// MaintenanceQueueDepth bounds the deferred summary-maintenance queue
	// used in degraded mode (default 1024). When the queue is full,
	// annotation ingestion blocks until the catch-up worker frees a slot.
	MaintenanceQueueDepth int
	// TraceSample is the probability that a statement is promoted to
	// detailed span collection, and therefore the retention probability for
	// ordinary statement traces (slow and errored traces are always
	// retained — as span-less shells when they were not promoted). Zero
	// means DefaultTraceSample; negative disables promotion entirely.
	TraceSample float64
	// TraceCapacity bounds the retained-trace ring (default 512).
	TraceCapacity int
	// DisableTracing turns the statement lifecycle tracer off entirely: no
	// spans are collected and SHOW TRACES reports tracing disabled.
	DisableTracing bool
	// ScrubInterval, when positive, starts the background integrity
	// scrubber: every interval it sweeps all heap pages through checksum
	// and structural verification and repairs (or quarantines) what it
	// finds. Zero leaves only the synchronous paths (CHECK TABLE, ScrubNow).
	ScrubInterval time.Duration
	// ScrubRate caps the background sweep at this many pages per second
	// (default DefaultScrubRate). Synchronous checks are never throttled.
	ScrubRate int
	// MaintenanceLatencyThreshold, when positive, enables automatic
	// degradation: when the moving average of synchronous per-annotation
	// summary-maintenance latency crosses it, subsequent maintenance is
	// deferred to the background catch-up worker until the queue drains.
	// Zero leaves only manual degradation (SetDegraded).
	MaintenanceLatencyThreshold time.Duration
}

// DB is one InsightNotes database instance.
//
// Concurrency: DB is safe for concurrent use. Statements synchronize on a
// database-level reader/writer lock — reads (SELECT, SHOW, ZOOMIN, Save)
// run concurrently with each other; writes (DDL, DML, annotation
// ingestion/retraction, link changes) are exclusive.
type DB struct {
	cfg  Config
	pool *storage.BufferPool
	// store is the physical page store under the pool (closed by Close).
	store storage.PageStore
	cat   *catalog.Catalog
	anns  *annotation.Store

	// stmtMu is the statement-level reader/writer lock described above.
	stmtMu sync.RWMutex

	// mu guards the digest cache, the instance models it feeds, and the
	// QID→SQL map. The summary envelopes themselves live in envs, under
	// N-way striped locks; writers that need both take mu before any
	// stripe lock.
	mu sync.RWMutex
	// envs is the striped summary store: the maintained per-tuple summary
	// objects of every annotated tuple (table → row → envelope), sharded
	// by (table, row) so parallel scan workers don't serialize on one
	// RWMutex.
	envs *envStore
	// digests caches per-annotation summarization results for instances
	// whose properties allow summarize-once (instance → annotation → digest).
	digests map[string]map[annotation.ID]summary.Digest

	cache   *zoomin.Cache
	queries map[int]string // QID → SQL text, for cache-miss re-execution

	// planCache caches parsed statement templates and memoized access-path
	// choices, keyed on normalized SQL (nil when Config.PlanCacheSize < 0).
	// preparedMu guards the PREPARE/EXECUTE registry in prepared.
	planCache  *plan.Cache
	preparedMu sync.RWMutex
	prepared   map[string]*preparedStmt
	nextQID    atomic.Int64
	// metrics is the engine-wide observability registry (nil when
	// Config.DisableMetrics is set).
	metrics *dbMetrics
	// tracer owns statement lifecycle traces and the retained-trace ring
	// (nil when Config.DisableTracing is set).
	tracer *trace.Tracer
	// writeSpan is the exec span of the mutating statement currently holding
	// stmtMu exclusively; logRecord and the DML row matcher hang their spans
	// (wal.append, stmt.plan) under it without threading a handle through
	// every call. Guarded by stmtMu (exclusive); nil outside write sections.
	writeSpan *trace.SpanHandle
	// start anchors the process-uptime gauge.
	start time.Time
	// annClock supplies Created timestamps deterministically when callers
	// don't provide one.
	annClock atomic.Int64
	// maint owns degraded-mode summary maintenance: the deferred-task
	// queue, the catch-up worker, and staleness accounting (see
	// maintenance.go). Always non-nil after Open.
	maint *maintenance

	// integrity is the scrubber's cumulative bookkeeping (see
	// integrity.go); scrub is the background sweep worker (nil unless
	// Config.ScrubInterval is set).
	integrity integrityState
	scrub     *scrubber
	// repairFn fetches a clean peer snapshot for heap-page repair
	// (SetRepairSource; nil standalone).
	repairMu sync.RWMutex
	repairFn func() ([]byte, error)

	// Durability state (nil/zero when the DB was opened without OpenDurable;
	// see durability.go). wal is attached only after recovery completes, so
	// replayed mutations are never re-logged.
	wal           *wal.Log
	walDir        string
	autoCkptBytes int64
	// pendingSync holds the group-commit token of the record staged by the
	// statement currently holding stmtMu exclusively; the statement entry
	// point takes it (takePendingSync) before unlocking and waits on the
	// shared commit fsync after release, so concurrent writers batch their
	// fsyncs. Guarded by stmtMu (exclusive).
	pendingSync wal.SyncToken
	// recoveredLSN is the included-LSN mark of the snapshot this DB was
	// loaded from (0 when fresh); WAL replay skips records at or below it.
	recoveredLSN uint64
	// recovery reports what the last OpenDurable found (for metrics).
	recovery RecoveryInfo
	// ckptTotal / ckptSeconds observe checkpoints when metrics are enabled.
	ckptTotal   *metrics.Counter
	ckptSeconds *metrics.Histogram
}

// Open creates a DB with the given configuration.
func Open(cfg Config) (*DB, error) {
	if cfg.PoolFrames <= 0 {
		cfg.PoolFrames = 256
	}
	if cfg.CacheBudget <= 0 {
		cfg.CacheBudget = 4 << 20
	}
	if cfg.CacheDir == "" {
		dir, err := os.MkdirTemp("", "insightnotes-cache-")
		if err != nil {
			return nil, err
		}
		cfg.CacheDir = dir
	}
	if cfg.CachePolicy == nil {
		cfg.CachePolicy = zoomin.RCO{}
	}
	cache, err := zoomin.NewCache(cfg.CacheDir, cfg.CacheBudget, cfg.CachePolicy)
	if err != nil {
		return nil, err
	}
	if cfg.PlanOptions.Counters == nil {
		cfg.PlanOptions.Counters = &plan.Counters{}
	}
	var store storage.PageStore = storage.NewMemStore()
	if cfg.PageFile != "" {
		// The page file is an ephemeral paging layer: recovery rebuilds all
		// state from the snapshot and WAL, so a stale file from a previous
		// process must not be reattached. Remove-then-create also orphans
		// the inode under any zombie process still holding it open.
		os.Remove(cfg.PageFile)
		fs, err := storage.OpenFileStore(cfg.PageFile)
		if err != nil {
			return nil, err
		}
		store = fs
	}
	pool := storage.NewBufferPool(store, cfg.PoolFrames)
	db := &DB{
		cfg:      cfg,
		pool:     pool,
		store:    store,
		cat:      catalog.New(pool),
		anns:     annotation.NewStore(pool),
		envs:     newEnvStore(pool),
		digests:  make(map[string]map[annotation.ID]summary.Digest),
		cache:    cache,
		queries:  make(map[int]string),
		prepared: make(map[string]*preparedStmt),
		start:    time.Now(),
	}
	if cfg.PlanCacheSize >= 0 {
		db.planCache = plan.NewCache(cfg.PlanCacheSize)
	}
	if !cfg.DisableTracing {
		sample := cfg.TraceSample
		switch {
		case sample == 0:
			sample = DefaultTraceSample
		case sample < 0:
			sample = 0
		}
		db.tracer = trace.New(trace.Config{
			Sample:        sample,
			SlowThreshold: cfg.SlowQueryThreshold,
			Capacity:      cfg.TraceCapacity,
		})
	}
	if !cfg.DisableMetrics {
		db.metrics = newDBMetrics(db)
	}
	db.maint = newMaintenance(db, cfg.MaintenanceQueueDepth, cfg.MaintenanceLatencyThreshold)
	if db.metrics != nil {
		db.maint.registerMetrics(db.metrics.reg)
	}
	if cfg.ScrubInterval > 0 {
		db.scrub = startScrubber(db, cfg.ScrubInterval, cfg.ScrubRate)
	}
	return db, nil
}

// MustOpen is Open for tests and examples; it panics on error.
func MustOpen(cfg Config) *DB {
	db, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// Catalog exposes the metadata layer.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Annotations exposes the raw-annotation store.
func (db *DB) Annotations() *annotation.Store { return db.anns }

// Cache exposes the zoom-in materialization cache (for stats in benchmarks
// and the REPL).
func (db *DB) Cache() *zoomin.Cache { return db.cache }

// Tracer exposes the statement lifecycle tracer (nil when tracing is
// disabled) — the server's /traces sidecar endpoint reads it.
func (db *DB) Tracer() *trace.Tracer { return db.tracer }

// EnvelopeFor implements exec.EnvelopeSource: a clone of the maintained
// envelope of a base tuple (nil when unannotated). The clone is taken
// under the tuple's stripe lock — not the database mutex — so parallel
// scan workers fetching envelopes contend only per stripe, and never race
// with the background catch-up worker mutating the live envelope mid-read.
func (db *DB) EnvelopeFor(table string, row types.RowID) *summary.Envelope {
	return db.envs.clone(table, row)
}

// digestFor computes (or returns the cached) digest of annotation a under
// instance in — the summarize-once optimization of §2.3: when both
// invariant properties hold, an annotation attached to many tuples is
// summarized exactly once. Callers must hold db.mu.
func (db *DB) digestFor(in *summary.Instance, a annotation.Annotation) summary.Digest {
	if db.cfg.DisableSummarizeOnce || !in.Props.SummarizeOnce() {
		return in.Summarize(a)
	}
	byAnn, ok := db.digests[in.Name]
	if !ok {
		byAnn = make(map[annotation.ID]summary.Digest)
		db.digests[in.Name] = byAnn
	}
	if d, ok := byAnn[a.ID]; ok {
		if m := db.metrics; m != nil {
			m.digestHits.Inc()
		}
		return d
	}
	if m := db.metrics; m != nil {
		m.digestMisses.Inc()
	}
	d := in.Summarize(a)
	byAnn[a.ID] = d
	return d
}

// SummaryBytes reports the total approximate size of the summary store for
// table — the numerator of the E1 compression experiment.
func (db *DB) SummaryBytes(table string) int64 {
	return db.envs.tableBytes(table)
}

// StoredEnvelope returns a clone of the maintained envelope of a tuple (nil
// when unannotated) — the inspection hook used by SHOW, the REPL, and
// tests.
func (db *DB) StoredEnvelope(table string, row types.RowID) *summary.Envelope {
	return db.envs.clone(table, row)
}

// Close stops the maintenance catch-up worker (draining its queue),
// releases the durability log when attached, and closes the page store.
func (db *DB) Close() error {
	if db.scrub != nil {
		db.scrub.close()
	}
	if db.maint != nil {
		db.maint.close()
	}
	// The engine owns CacheDir only when it generated a temp dir; removing
	// a user-supplied directory would be hostile. Detect by prefix.
	var err error
	if db.wal != nil {
		err = db.wal.Close()
	}
	if db.store != nil {
		if serr := db.store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

func (db *DB) nextAnnotationTime() int64 { return db.annClock.Add(1) }

func (db *DB) allocateQID() int { return int(db.nextQID.Add(1)) + 100 }

// instanceFromStatement builds a summary.Instance from a parsed
// CREATE SUMMARY INSTANCE statement.
func instanceFromStatement(name, typeName string, labels []string, opts map[string]types.Value) (*summary.Instance, error) {
	tn, err := summary.ParseTypeName(typeName)
	if err != nil {
		return nil, err
	}
	getFloat := func(key string, def float64) float64 {
		if v, ok := opts[key]; ok && (v.Kind() == types.KindFloat || v.Kind() == types.KindInt) {
			return v.Float()
		}
		return def
	}
	getInt := func(key string, def int) int {
		if v, ok := opts[key]; ok && v.Kind() == types.KindInt {
			return int(v.Int())
		}
		return def
	}
	getBool := func(key string, def bool) bool {
		if v, ok := opts[key]; ok && v.Kind() == types.KindBool {
			return v.Bool()
		}
		return def
	}
	switch tn {
	case summary.TypeClassifier:
		if len(labels) < 2 {
			return nil, fmt.Errorf("engine: classifier instance %q needs LABELS ('a', 'b', ...)", name)
		}
		model, err := newNaiveBayes(labels)
		if err != nil {
			return nil, err
		}
		return summary.NewClassifierInstance(name, model)
	case summary.TypeCluster:
		in, err := summary.NewClusterInstance(name, getFloat("threshold", summary.DefaultSimThreshold))
		if err != nil {
			return nil, err
		}
		in.CentroidTerms = getInt("centroidterms", summary.DefaultCentroidTerms)
		in.PreviewLen = getInt("previewlen", summary.DefaultPreviewLen)
		in.MergeBySimilarity = getBool("mergebysim", false)
		return in, nil
	case summary.TypeSnippet:
		return summary.NewSnippetInstance(name, getInt("sentences", summary.DefaultSnippetSentences))
	}
	return nil, fmt.Errorf("engine: unsupported summary type %q", typeName)
}
