package engine

import (
	"context"

	"insightnotes/internal/plan"
	"insightnotes/internal/sql"
)

// This file holds the pre-consolidation statement API: every method is a
// one-line wrapper over the context-first entry points (Query, Exec,
// ExecScript, ExecStatement, ZoomIn) with the behavior expressed as
// statement options. New code should call those directly; the
// scripts/check.sh lint rejects any new exported ...Context method in this
// package beyond the allowlisted names below.

// QueryContext is Query without options.
//
// Deprecated: Query is context-first; call Query(ctx, sqlText) directly.
func (db *DB) QueryContext(ctx context.Context, sqlText string) (*Result, error) {
	return db.Query(ctx, sqlText)
}

// QueryTraced is Query with the under-the-hood operator log enabled.
//
// Deprecated: use Query(ctx, sqlText, WithTrace()).
func (db *DB) QueryTraced(sqlText string) (*Result, error) {
	return db.Query(context.Background(), sqlText, WithTrace())
}

// QueryTracedContext is QueryTraced under an explicit context.
//
// Deprecated: use Query(ctx, sqlText, WithTrace()).
func (db *DB) QueryTracedContext(ctx context.Context, sqlText string) (*Result, error) {
	return db.Query(ctx, sqlText, WithTrace())
}

// QueryWithOptions executes a SELECT under explicit plan options.
//
// Deprecated: use Query(ctx, sqlText, WithPlanOptions(opts)).
func (db *DB) QueryWithOptions(sqlText string, opts plan.Options) (*Result, error) {
	return db.Query(context.Background(), sqlText, WithPlanOptions(opts))
}

// ExecContext is Exec without options.
//
// Deprecated: Exec is context-first; call Exec(ctx, sqlText) directly.
func (db *DB) ExecContext(ctx context.Context, sqlText string) (*Result, error) {
	return db.Exec(ctx, sqlText)
}

// ExecScriptContext is ExecScript without options.
//
// Deprecated: ExecScript is context-first; call ExecScript(ctx, script).
func (db *DB) ExecScriptContext(ctx context.Context, script string) ([]*Result, error) {
	return db.ExecScript(ctx, script)
}

// ExecStatementContext is ExecStatement without options.
//
// Deprecated: ExecStatement is context-first; call
// ExecStatement(ctx, stmt, sqlText) directly.
func (db *DB) ExecStatementContext(ctx context.Context, stmt sql.Statement, sqlText string) (*Result, error) {
	return db.ExecStatement(ctx, stmt, sqlText)
}

// ZoomInContext is ZoomIn.
//
// Deprecated: ZoomIn is context-first; call ZoomIn(ctx, req) directly.
func (db *DB) ZoomInContext(ctx context.Context, req ZoomInRequest) ([]ZoomRowResult, bool, error) {
	return db.ZoomIn(ctx, req)
}
