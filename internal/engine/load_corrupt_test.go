package engine

import (
	"strings"
	"testing"
)

// TestLoadCorruptSnapshotTable fuzzes Load with structurally broken
// snapshots: each must produce a descriptive error — never a panic, and
// never a silently half-loaded engine. A corrupt snapshot is exactly
// what a recovery path sees after disk trouble, so this is the
// first line of the durability defence.
func TestLoadCorruptSnapshotTable(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantSub string // substring the error must contain
	}{
		{
			name:    "empty input",
			input:   "",
			wantSub: "corrupt snapshot",
		},
		{
			name:    "truncated json",
			input:   `{"version": 1, "tables": [{"name": "t", "col`,
			wantSub: "corrupt snapshot",
		},
		{
			name:    "not json at all",
			input:   "\x00\x01\x02 garbage",
			wantSub: "corrupt snapshot",
		},
		{
			name:    "unsupported version",
			input:   `{"version": 99}`,
			wantSub: "unsupported snapshot version 99",
		},
		{
			name:    "zero version",
			input:   `{"version": 0, "tables": []}`,
			wantSub: "unsupported snapshot version",
		},
		{
			name:    "empty table name",
			input:   `{"version": 1, "tables": [{"name": "", "columns": [{"name": "a", "kind": 1}]}]}`,
			wantSub: "empty name",
		},
		{
			name:    "table without columns",
			input:   `{"version": 1, "tables": [{"name": "t", "columns": []}]}`,
			wantSub: "no columns",
		},
		{
			name: "duplicate table names",
			input: `{"version": 1, "tables": [
				{"name": "t", "columns": [{"name": "a", "kind": 1}]},
				{"name": "t", "columns": [{"name": "a", "kind": 1}]}]}`,
			wantSub: "corrupt snapshot",
		},
		{
			name: "duplicate row ids",
			input: `{"version": 1, "tables": [{"name": "t",
				"columns": [{"name": "a", "kind": 1}],
				"rows": [{"id": 1, "values": [{"int": 1}]}, {"id": 1, "values": [{"int": 2}]}]}]}`,
			wantSub: "corrupt snapshot",
		},
		{
			name: "index on unknown column",
			input: `{"version": 1, "tables": [{"name": "t",
				"columns": [{"name": "a", "kind": 1}], "indexes": ["nope"]}]}`,
			wantSub: "index",
		},
		{
			name:    "instance garbage",
			input:   `{"version": 1, "tables": [], "instances": [{"name": "x", "type": "NoSuchType"}]}`,
			wantSub: "instance",
		},
		{
			name:    "link to unknown table",
			input:   `{"version": 1, "tables": [], "instances": [], "links": [{"instance": "c", "table": "ghost"}]}`,
			wantSub: "link",
		},
		{
			name: "annotation with invalid id",
			input: `{"version": 1, "tables": [{"name": "t", "columns": [{"name": "a", "kind": 1}],
				"rows": [{"id": 1, "values": [{"int": 1}]}]}],
				"annotations": [{"id": 0, "text": "x", "targets": [{"table": "t", "row": 1, "cols": 1}]}]}`,
			wantSub: "invalid id",
		},
		{
			name: "annotation without targets",
			input: `{"version": 1, "tables": [],
				"annotations": [{"id": 1, "text": "x", "targets": []}]}`,
			wantSub: "no targets",
		},
		{
			name: "annotation targeting unknown table",
			input: `{"version": 1, "tables": [],
				"annotations": [{"id": 1, "text": "x", "targets": [{"table": "ghost", "row": 1, "cols": 1}]}]}`,
			wantSub: "unknown table",
		},
		{
			name: "annotation targeting missing row",
			input: `{"version": 1, "tables": [{"name": "t", "columns": [{"name": "a", "kind": 1}],
				"rows": [{"id": 1, "values": [{"int": 1}]}]}],
				"annotations": [{"id": 1, "text": "x", "targets": [{"table": "t", "row": 99, "cols": 1}]}]}`,
			wantSub: "missing row",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked: %v", r)
				}
			}()
			_, err := Load(strings.NewReader(tc.input), Config{CacheDir: t.TempDir(), DisableMetrics: true})
			if err == nil {
				t.Fatal("Load accepted a corrupt snapshot")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
