package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"insightnotes/internal/annotation"
	"insightnotes/internal/catalog"
	"insightnotes/internal/failpoint"
	"insightnotes/internal/summary"
	"insightnotes/internal/wal"
)

// Replication support: the engine side of WAL shipping. The primary's
// sender (internal/replication) tails the WAL file directly — nothing
// here sits on the commit path — and needs only a consistent full
// snapshot for replicas too far behind a rotated log. The replica side
// applies shipped records through the same logical redo path recovery
// uses, and persists them into its own WAL under the primary's LSNs so a
// restart resumes from exactly what it last made durable.

// WAL exposes the attached write-ahead log (nil without durability). The
// replication sender uses it to tail the durable frontier.
func (db *DB) WAL() *wal.Log { return db.wal }

// ReplicationPosition returns the LSN of the last record this database
// has staged to its local WAL — the position a replica resumes streaming
// from after a restart.
func (db *DB) ReplicationPosition() uint64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.LastLSN()
}

// ReplicationSnapshot writes a full-state snapshot to w marked with the
// current WAL position, for resyncing a replica that fell behind a
// rotated log. It holds the shared statement lock: concurrent reads
// proceed, writes wait for the duration of the serialization.
func (db *DB) ReplicationSnapshot(w io.Writer) (uint64, error) {
	if db.wal == nil {
		return 0, fmt.Errorf("engine: replication snapshot requires durability")
	}
	db.stmtMu.RLock()
	defer db.stmtMu.RUnlock()
	// Writers are excluded, so the WAL tip cannot move while the state is
	// serialized: the LSN mark and the snapshot contents agree.
	lsn := db.wal.LastLSN()
	if err := db.writeSnapshot(w, lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}

// ApplyReplicated applies a batch of replicated WAL records: each record
// mutates memory through the recovery redo path, then is staged into the
// replica's own WAL under the primary's LSN; one shared commit fsync at
// the end makes the batch durable. Records at or below the local WAL
// position are skipped — after a crash between apply and ack the primary
// resends them, and idempotence comes from the LSN, exactly as in
// recovery replay. The fp/replication/apply crash point models the
// replica process dying mid-batch: the WAL handle is killed and the
// error is returned for the receiver to treat as process death.
func (db *DB) ApplyReplicated(recs []wal.Record) error {
	if db.wal == nil {
		return fmt.Errorf("engine: replica apply requires durability")
	}
	if len(recs) == 0 {
		return nil
	}
	var tok wal.SyncToken
	err := func() error {
		db.stmtMu.Lock()
		defer db.stmtMu.Unlock()
		for _, rec := range recs {
			if rec.LSN <= db.wal.LastLSN() {
				continue
			}
			if err := failpoint.Eval(failpoint.ReplicationApply); err != nil {
				if failpoint.IsCrash(err) {
					db.wal.Kill()
				}
				return err
			}
			if err := db.applyWALRecord(rec); err != nil {
				return fmt.Errorf("engine: applying replicated record lsn=%d type=%s: %w", rec.LSN, rec.Type, err)
			}
			t, err := db.wal.StageRecord(rec)
			if err != nil {
				return fmt.Errorf("engine: staging replicated record lsn=%d: %w", rec.LSN, err)
			}
			tok = t
		}
		return nil
	}()
	if serr := db.syncWAL(tok); err == nil && serr != nil {
		err = serr
	}
	if err != nil {
		return err
	}
	db.maybeAutoCheckpoint()
	return nil
}

// InstallReplicaSnapshot replaces the database's entire state with the
// primary's snapshot (shed-and-resync: the replica fell behind a rotated
// WAL). The raw snapshot is validated against a scratch engine first so
// a malformed payload cannot leave the live replica half-cleared; then,
// under the exclusive statement lock, the state is swapped, the snapshot
// is published to the data directory, and the local WAL is rotated to
// the snapshot's LSN. Crash orderings are safe for the same reason
// checkpointing is: stale log records sit at or below the published
// snapshot's LSN and recovery skips them.
func (db *DB) InstallReplicaSnapshot(raw []byte) (uint64, error) {
	if db.wal == nil {
		return 0, fmt.Errorf("engine: snapshot install requires durability")
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return 0, corruptf("%v", err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("engine: unsupported snapshot version %d", snap.Version)
	}
	scratch, err := Load(bytes.NewReader(raw), Config{DisableMetrics: true, DisableTracing: true})
	if err != nil {
		return 0, fmt.Errorf("engine: rejecting replica snapshot: %w", err)
	}
	scratch.Close()

	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	db.clearStateLocked()
	if err := db.applySnapshot(&snap); err != nil {
		// Validated above, so this indicates an environment failure
		// (page store exhaustion or the like); the replica is unusable
		// and the caller should stop serving.
		return 0, fmt.Errorf("engine: installing replica snapshot: %w", err)
	}
	if err := writeRawSnapshot(filepath.Join(db.walDir, snapshotFileName), raw); err != nil {
		return 0, fmt.Errorf("engine: persisting replica snapshot: %w", err)
	}
	if err := db.wal.Reset(snap.LSN); err != nil {
		return 0, fmt.Errorf("engine: rotating wal after resync: %w", err)
	}
	return snap.LSN, nil
}

// clearStateLocked discards the full logical state — catalog, annotation
// and summary stores, digest cache, registered queries, materialized
// zoom-in results — leaving a blank database on the same buffer pool and
// registries, ready for applySnapshot. Old heap pages are orphaned in
// the page store until the next restart rebuilds it (the page file is an
// ephemeral paging layer, recreated on open). Callers hold the exclusive
// statement lock.
func (db *DB) clearStateLocked() {
	db.drainMaintenance()
	db.mu.Lock()
	db.cat = catalog.New(db.pool)
	db.anns = annotation.NewStore(db.pool)
	db.envs = newEnvStore(db.pool)
	db.digests = make(map[string]map[annotation.ID]summary.Digest)
	db.queries = make(map[int]string)
	db.mu.Unlock()
	db.annClock.Store(0)
	db.cache.Clear()
}

// annStore / envStore / catStore snapshot the store pointers under
// db.mu for readers outside the statement lock (metric scrapes): a
// replica snapshot resync replaces the stores wholesale.
func (db *DB) annStore() *annotation.Store {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.anns
}

func (db *DB) envStore() *envStore {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.envs
}

func (db *DB) catStore() *catalog.Catalog {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cat
}

// writeRawSnapshot publishes pre-serialized snapshot bytes atomically:
// temp file, fsync, rename — the same contract as snapshotToFile, for
// bytes that were produced elsewhere (the primary).
func writeRawSnapshot(path string, raw []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
