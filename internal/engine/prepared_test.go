package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// --- prepared statement lifecycle ---

func TestPrepareExecuteDeallocate(t *testing.T) {
	db := testDB(t)
	defer db.Close()
	mustExec(t, db, "CREATE TABLE birds (id INT, name TEXT)")
	mustExec(t, db, "INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan'), (3, 'Whooper Swan')")

	res := mustExec(t, db, "PREPARE by_id AS SELECT name FROM birds WHERE id = $1")
	if !strings.Contains(res.Message, "1 parameter(s)") {
		t.Fatalf("PREPARE message = %q", res.Message)
	}

	res = mustExec(t, db, "EXECUTE by_id USING 2")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].String() != "Mute Swan" {
		t.Fatalf("EXECUTE by_id USING 2 = %v", res.Rows)
	}
	// Parenthesized argument form, different value, case-insensitive name.
	res = mustExec(t, db, "EXECUTE BY_ID (3)")
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].String() != "Whooper Swan" {
		t.Fatalf("EXECUTE BY_ID (3) = %v", res.Rows)
	}

	mustExec(t, db, "DEALLOCATE by_id")
	if _, err := db.Exec(context.Background(), "EXECUTE by_id USING 1"); err == nil ||
		!strings.Contains(err.Error(), "unknown prepared statement") {
		t.Fatalf("EXECUTE after DEALLOCATE: %v", err)
	}
}

func TestPrepareErrors(t *testing.T) {
	db := testDB(t)
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "PREPARE p AS SELECT a FROM t WHERE a = $1")

	for stmt, want := range map[string]string{
		"PREPARE p AS SELECT a FROM t":                "already exists",
		"PREPARE gap AS SELECT a FROM t WHERE a = $2": "uses $2 but not $1",
		"EXECUTE p":              "expects 1 parameter(s), got 0",
		"EXECUTE p USING 1, 2":   "expects 1 parameter(s), got 2",
		"EXECUTE nobody USING 1": "unknown prepared statement",
		"DEALLOCATE nobody":      "unknown prepared statement",
		"EXECUTE p USING a":      "must be constants",
	} {
		if _, err := db.Exec(context.Background(), stmt); err == nil ||
			!strings.Contains(err.Error(), want) {
			t.Errorf("%s: error = %v, want substring %q", stmt, err, want)
		}
	}
}

// A prepared mutation binds parameters into the write path; each EXECUTE
// applies once.
func TestPreparedMutation(t *testing.T) {
	db := testDB(t)
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, db, "PREPARE ins AS INSERT INTO t VALUES ($1, $2)")
	for i := 1; i <= 3; i++ {
		mustExec(t, db, fmt.Sprintf("EXECUTE ins USING %d, 'row-%d'", i, i))
	}
	res := mustExec(t, db, "SELECT a, b FROM t ORDER BY a")
	if len(res.Rows) != 3 || res.Rows[2].Tuple[1].String() != "row-3" {
		t.Fatalf("rows after 3 prepared inserts = %v", res.Rows)
	}
}

// --- plan cache behavior ---

func TestPlanCacheHitsOnRepeatedSelect(t *testing.T) {
	db := testDB(t)
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")

	const q = "SELECT a FROM t WHERE a >= 2 ORDER BY a"
	mustExec(t, db, q)
	base := db.PlanCacheStats()
	if base.Entries == 0 {
		t.Fatal("first SELECT did not populate the plan cache")
	}
	// Same text modulo whitespace: normalization maps it to the same entry.
	res := mustExec(t, db, "SELECT a  FROM t\n\tWHERE a >= 2 ORDER BY a;")
	st := db.PlanCacheStats()
	if st.Hits != base.Hits+1 {
		t.Fatalf("hits = %d after repeat, want %d", st.Hits, base.Hits+1)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("cached SELECT rows = %v", res.Rows)
	}
	// Non-SELECT traffic must not probe the cache (misses stay flat).
	mustExec(t, db, "INSERT INTO t VALUES (4)")
	if after := db.PlanCacheStats(); after.Misses != st.Misses {
		t.Fatalf("INSERT inflated plan-cache misses: %d -> %d", st.Misses, after.Misses)
	}
}

func TestPlanCacheSharedBetweenExecuteAndAdhoc(t *testing.T) {
	db := testDB(t)
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")

	// PREPARE warms the cache under the template key; the first EXECUTE
	// must already hit.
	mustExec(t, db, "PREPARE scan AS SELECT a FROM t WHERE a = $1")
	base := db.PlanCacheStats()
	mustExec(t, db, "EXECUTE scan USING 1")
	if st := db.PlanCacheStats(); st.Hits != base.Hits+1 {
		t.Fatalf("first EXECUTE after PREPARE: hits %d -> %d, want warm hit", base.Hits, st.Hits)
	}
	// Parameter values don't split the cache key.
	mustExec(t, db, "EXECUTE scan USING 2")
	if st := db.PlanCacheStats(); st.Hits != base.Hits+2 {
		t.Fatalf("second EXECUTE: hits = %d, want %d", st.Hits, base.Hits+2)
	}
}

// The regression test for ISSUE 10's acceptance criterion: a cached plan
// must be dropped when DDL or an index change could invalidate it.
func TestPlanCacheInvalidatedByDDL(t *testing.T) {
	db := testDB(t)
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i*2))
	}

	const q = "SELECT b FROM t WHERE a = 7"
	mustExec(t, db, q)
	if st := db.PlanCacheStats(); st.Entries == 0 {
		t.Fatal("SELECT did not populate the plan cache")
	}

	// CREATE INDEX drops the cache: the memoized full-scan choice is now
	// stale (an index dive would win).
	mustExec(t, db, "CREATE INDEX ON t (a)")
	if st := db.PlanCacheStats(); st.Entries != 0 {
		t.Fatalf("entries = %d after CREATE INDEX, want 0", st.Entries)
	}
	res := mustExec(t, db, q)
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Int() != 14 {
		t.Fatalf("post-index SELECT = %v", res.Rows)
	}

	// DROP TABLE drops the cache too; re-creating the table with a
	// different shape must not serve the old plan.
	mustExec(t, db, "DROP TABLE t")
	if st := db.PlanCacheStats(); st.Entries != 0 {
		t.Fatalf("entries = %d after DROP TABLE, want 0", st.Entries)
	}
	mustExec(t, db, "CREATE TABLE t (a INT, b INT, c TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (7, 99, 'x')")
	res = mustExec(t, db, q)
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].Int() != 99 {
		t.Fatalf("SELECT after re-create = %v", res.Rows)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db, err := Open(Config{CacheDir: t.TempDir(), PlanCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	mustExec(t, db, "SELECT a FROM t")
	mustExec(t, db, "SELECT a FROM t")
	st := db.PlanCacheStats()
	if st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache reports %+v", st)
	}
	// Prepared statements still work without the cache.
	mustExec(t, db, "PREPARE p AS SELECT a FROM t WHERE a = $1")
	res := mustExec(t, db, "EXECUTE p USING 1")
	if len(res.Rows) != 1 {
		t.Fatalf("EXECUTE without plan cache = %v", res.Rows)
	}
}

// --- bulk ingest ---

func TestBulkInsert(t *testing.T) {
	db := testDB(t)
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	res := mustExec(t, db, "BULK INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
	if !strings.Contains(res.Message, "3 row(s) bulk inserted") {
		t.Fatalf("message = %q", res.Message)
	}
	if got := mustExec(t, db, "SELECT a FROM t ORDER BY a"); len(got.Rows) != 3 {
		t.Fatalf("rows = %v", got.Rows)
	}
	// All-or-nothing: a malformed row anywhere aborts the whole batch
	// before any row is applied.
	if _, err := db.Exec(context.Background(),
		"BULK INSERT INTO t VALUES (4, 'd'), (5)"); err == nil {
		t.Fatal("arity-mismatched batch succeeded")
	}
	if got := mustExec(t, db, "SELECT a FROM t"); len(got.Rows) != 3 {
		t.Fatalf("failed batch left partial rows: %v", got.Rows)
	}
}

func TestBulkInsertDurableReplay(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(Config{CacheDir: t.TempDir()}, DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "BULK INSERT INTO t VALUES (1), (2), (3), (4), (5)")
	db.Close()

	re, _, err := OpenDurable(Config{CacheDir: t.TempDir()}, DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res := mustExec(t, re, "SELECT COUNT(*) FROM t")
	if res.Rows[0].Tuple[0].Int() != 5 {
		t.Fatalf("replayed bulk rows = %v", res.Rows[0].Tuple[0])
	}
}

func TestAnnotateBatch(t *testing.T) {
	db := birdDB(t)
	defer db.Close()
	reqs := make([]AnnotationRequest, 6)
	for i := range reqs {
		reqs[i] = AnnotationRequest{
			Text:  fmt.Sprintf("observed feeding in flocks #%d", i),
			Table: "birds",
		}
	}
	ids, tuples, err := db.AnnotateBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 6 || tuples == 0 {
		t.Fatalf("AnnotateBatch ids=%d tuples=%d", len(ids), tuples)
	}
	res := mustExec(t, db, "SELECT id FROM birds WHERE id = 1")
	if res.Rows[0].Env == nil || res.Rows[0].Env.IsEmpty() {
		t.Fatal("batched annotations produced no summary envelope")
	}
	if _, _, err := db.AnnotateBatch(nil); err == nil {
		t.Fatal("empty batch succeeded")
	}
}

// A degraded engine must defer a whole batch to the maintenance queue in
// one feed — not split it — and catch up cleanly.
func TestAnnotateBatchDegraded(t *testing.T) {
	db := birdDB(t)
	defer db.Close()
	db.SetDegraded(true)
	reqs := make([]AnnotationRequest, 8)
	for i := range reqs {
		reqs[i] = AnnotationRequest{Text: fmt.Sprintf("flock sighting %d", i), Table: "birds"}
	}
	if _, _, err := db.AnnotateBatch(reqs); err != nil {
		t.Fatal(err)
	}
	st := db.MaintenanceStats()
	// 8 annotations × 3 linked instances = 24 deferred tasks.
	if st.Pending == 0 || !st.Degraded {
		t.Fatalf("degraded batch not deferred: %+v", st)
	}
	db.SetDegraded(false)
	db.WaitMaintenanceIdle()
	if st := db.MaintenanceStats(); st.Pending != 0 {
		t.Fatalf("catch-up left %d pending", st.Pending)
	}
}

func TestAnnotateBatchDurableReplay(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(Config{CacheDir: t.TempDir()}, DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE birds (id INT, name TEXT)")
	mustExec(t, db, "INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan')")
	if _, _, err := db.AnnotateBatch([]AnnotationRequest{
		{Text: "first batched note", Table: "birds"},
		{Text: "second batched note", Table: "birds"},
	}); err != nil {
		t.Fatal(err)
	}
	before := len(mustExec(t, db, "SHOW ANNOTATIONS ON birds").Rows)
	if before == 0 {
		t.Fatal("batch produced no annotation bindings")
	}
	db.Close()

	re, _, err := OpenDurable(Config{CacheDir: t.TempDir()}, DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res := mustExec(t, re, "SHOW ANNOTATIONS ON birds")
	if len(res.Rows) != before {
		t.Fatalf("replayed annotate_batch rows = %d, want %d", len(res.Rows), before)
	}
}

// --- benchmarks (E18 in EXPERIMENTS.md, driven by make bench-prepare) ---

// BenchmarkAdhocSelect / BenchmarkPreparedExecute compare the cold path
// (lex + parse + cost every time — plan cache disabled) against EXECUTE of
// a prepared template (cache hit: template reuse + access-path memo).
func BenchmarkAdhocSelect(b *testing.B) {
	db, err := Open(Config{CacheDir: b.TempDir(), DisableMetrics: true, PlanCacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	benchScanTable(b, db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(context.Background(),
			fmt.Sprintf("SELECT b FROM t WHERE a = %d", i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreparedExecute(b *testing.B) {
	db, err := Open(Config{CacheDir: b.TempDir(), DisableMetrics: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	benchScanTable(b, db)
	if _, err := db.Exec(context.Background(), "PREPARE q AS SELECT b FROM t WHERE a = $1"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(context.Background(),
			fmt.Sprintf("EXECUTE q USING %d", i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchScanTable(b *testing.B, db *DB) {
	b.Helper()
	if _, err := db.Exec(context.Background(), "CREATE TABLE t (a INT, b TEXT)"); err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("BULK INSERT INTO t VALUES ")
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'bird-%d')", i, i)
	}
	if _, err := db.Exec(context.Background(), sb.String()); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(context.Background(), "CREATE INDEX ON t (a)"); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRowInsertDurable / BenchmarkBulkInsertDurable measure the bulk
// path's amortization on a durable engine: one parse, one lock hold, one
// WAL record, and one commit fsync per batch instead of per row.
// Reported as rows/sec via b.N rows each.
func BenchmarkRowInsertDurable(b *testing.B) {
	db, _, err := OpenDurable(Config{CacheDir: b.TempDir(), DisableMetrics: true},
		DurabilityOptions{Dir: b.TempDir(), AutoCheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(context.Background(), "CREATE TABLE t (id INT, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(context.Background(),
			fmt.Sprintf("INSERT INTO t VALUES (%d, 'bird-%d')", i, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

func BenchmarkBulkInsertDurable(b *testing.B) {
	const batch = 100
	db, _, err := OpenDurable(Config{CacheDir: b.TempDir(), DisableMetrics: true},
		DurabilityOptions{Dir: b.TempDir(), AutoCheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(context.Background(), "CREATE TABLE t (id INT, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		sb.WriteString("BULK INSERT INTO t VALUES ")
		for j := 0; j < batch; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			id := i*batch + j
			fmt.Fprintf(&sb, "(%d, 'bird-%d')", id, id)
		}
		if _, err := db.Exec(context.Background(), sb.String()); err != nil {
			b.Fatal(err)
		}
		rows += batch
	}
	b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/sec")
}
