package engine

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"insightnotes/internal/annotation"
	"insightnotes/internal/workload"
)

// randomDB builds a randomized two-table database with instances, links,
// and annotations (including multi-target and column-scoped ones), all
// derived from seed.
func randomDB(t *testing.T, seed int64) *DB {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := workload.New(seed)
	db := testDB(t)
	script := `
	CREATE TABLE R (a INT, b INT, c TEXT);
	CREATE TABLE S (x INT, y TEXT);
	CREATE SUMMARY INSTANCE Cls TYPE Classifier LABELS ('Behavior', 'Disease', 'Anatomy', 'Other');
	CREATE SUMMARY INSTANCE Clu TYPE Cluster WITH (threshold = 0.3);
	CREATE SUMMARY INSTANCE Snp TYPE Snippet WITH (sentences = 2);
	LINK SUMMARY Cls TO R;
	LINK SUMMARY Clu TO R;
	LINK SUMMARY Snp TO R;
	LINK SUMMARY Cls TO S;
	LINK SUMMARY Clu TO S;
	`
	if _, err := db.ExecScript(context.Background(), script); err != nil {
		t.Fatal(err)
	}
	if err := db.TrainClassifier("Cls", g.TrainingSet(workload.BirdClasses, 6)); err != nil {
		t.Fatal(err)
	}
	nR, nS := 2+r.Intn(4), 2+r.Intn(3)
	for i := 0; i < nR; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO R VALUES (%d, %d, 'c%d')", i+1, r.Intn(3), i))
	}
	for i := 0; i < nS; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO S VALUES (%d, 'y%d')", i%nR+1, i))
	}
	rCols := [][]string{nil, {"a"}, {"b"}, {"c"}, {"a", "b"}, {"b", "c"}}
	sCols := [][]string{nil, {"x"}, {"y"}}
	// S.x values cover 1..min(nR, nS), so filters must stay in that range.
	xMax := nR
	if nS < nR {
		xMax = nS
	}
	nAnn := 5 + r.Intn(15)
	for i := 0; i < nAnn; i++ {
		class := workload.BirdClasses[r.Intn(4)]
		a := annotation.Annotation{Text: g.ClassText(class), Author: g.AuthorName()}
		if r.Intn(8) == 0 {
			a.Title, a.Document = g.Document(class, 4)
		}
		var specs []TargetSpec
		if r.Intn(4) == 0 {
			// Multi-target across both tables.
			specs = []TargetSpec{
				{Table: "R", Columns: rCols[r.Intn(len(rCols))], Where: parseWhere(t, fmt.Sprintf("a = %d", r.Intn(nR)+1))},
				{Table: "S", Columns: sCols[r.Intn(len(sCols))], Where: parseWhere(t, fmt.Sprintf("x = %d", r.Intn(xMax)+1))},
			}
		} else if r.Intn(2) == 0 {
			specs = []TargetSpec{{Table: "R", Columns: rCols[r.Intn(len(rCols))],
				Where: parseWhere(t, fmt.Sprintf("a = %d", r.Intn(nR)+1))}}
		} else {
			specs = []TargetSpec{{Table: "S", Columns: sCols[r.Intn(len(sCols))],
				Where: parseWhere(t, fmt.Sprintf("x = %d", r.Intn(xMax)+1))}}
		}
		if _, _, err := db.AnnotateTargets(a, specs); err != nil {
			t.Fatalf("seed %d annotation %d: %v", seed, i, err)
		}
	}
	return db
}

// TestSnapshotRoundTripProperty verifies that save→load preserves every
// maintained summary envelope on randomized databases.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDB(t, seed)
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Logf("seed %d: save: %v", seed, err)
			return false
		}
		back, err := Load(&buf, Config{CacheDir: t.TempDir()})
		if err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		if db.Annotations().Count() != back.Annotations().Count() {
			t.Logf("seed %d: annotation counts differ", seed)
			return false
		}
		for _, table := range []string{"R", "S"} {
			for _, row := range db.Annotations().AnnotatedRows(table) {
				a := db.StoredEnvelope(table, row)
				b := back.StoredEnvelope(table, row)
				if (a == nil) != (b == nil) {
					t.Logf("seed %d: %s/%d envelope presence differs", seed, table, row)
					return false
				}
				if a != nil && !a.Equal(b) {
					t.Logf("seed %d: %s/%d differs:\n%s\nvs\n%s", seed, table, row, a.Render(), b.Render())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPlanEquivalenceRandomized verifies Theorems 1&2 end to end on
// randomized annotation populations: reversed join orders produce
// identical summaries for every output tuple.
func TestPlanEquivalenceRandomized(t *testing.T) {
	queries := [][2]string{
		{
			"SELECT r.a, r.b, s.y FROM R r, S s WHERE r.a = s.x",
			"SELECT r.a, r.b, s.y FROM S s, R r WHERE r.a = s.x",
		},
		{
			"SELECT r.a, s.y FROM R r, S s WHERE r.a = s.x AND r.b >= 0",
			"SELECT r.a, s.y FROM S s, R r WHERE r.a = s.x AND r.b >= 0",
		},
		{
			"SELECT DISTINCT r.b, s.x FROM R r, S s WHERE r.a = s.x",
			"SELECT DISTINCT r.b, s.x FROM S s, R r WHERE r.a = s.x",
		},
	}
	f := func(seed int64, pick uint8) bool {
		db := randomDB(t, seed)
		q := queries[int(pick)%len(queries)]
		r1, err := db.Query(context.Background(), q[0])
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		r2, err := db.Query(context.Background(), q[1])
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Logf("seed %d: row counts %d vs %d", seed, len(r1.Rows), len(r2.Rows))
			return false
		}
		// Compare as multisets keyed by tuple text.
		bag := map[string][]string{}
		for _, row := range r1.Rows {
			key := row.Tuple.String()
			summaryText := ""
			if row.Env != nil {
				summaryText = row.Env.Render()
			}
			bag[key] = append(bag[key], summaryText)
		}
		for _, row := range r2.Rows {
			key := row.Tuple.String()
			summaryText := ""
			if row.Env != nil {
				summaryText = row.Env.Render()
			}
			list := bag[key]
			found := -1
			for i, s := range list {
				if s == summaryText {
					found = i
					break
				}
			}
			if found < 0 {
				t.Logf("seed %d: no matching summary for %s:\n%s", seed, key, summaryText)
				return false
			}
			bag[key] = append(list[:found], list[found+1:]...)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
