package engine

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"insightnotes/internal/metrics"
)

func durableConfig(t *testing.T) Config {
	t.Helper()
	return Config{CacheDir: t.TempDir(), DisableMetrics: true}
}

// openDurable opens dir with auto-checkpointing disabled so tests
// control exactly when the log rotates.
func openDurable(t *testing.T, dir string) (*DB, RecoveryInfo) {
	t.Helper()
	db, info, err := OpenDurable(durableConfig(t), DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	t.Cleanup(func() { db.Close() })
	return db, info
}

func TestOpenDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, info := openDurable(t, dir)
	if info.SnapshotLoaded || info.Replayed != 0 {
		t.Fatalf("fresh dir recovery = %+v", info)
	}
	mustExec(t, db, "CREATE TABLE birds (id INT, name TEXT)")
	mustExec(t, db, "INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan')")
	mustExec(t, db, "CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('Behavior', 'Other')")
	mustExec(t, db, "LINK SUMMARY C TO birds")
	mustExec(t, db, "ADD ANNOTATION 'observed feeding on stonewort' ON birds WHERE id = 1")
	mustExec(t, db, "UPDATE birds SET name = 'Anser cygnoides' WHERE id = 1")
	db.Close()

	// Reopen: no snapshot yet, the whole WAL replays.
	back, info := openDurable(t, dir)
	if info.SnapshotLoaded {
		t.Error("no checkpoint was taken, but recovery loaded a snapshot")
	}
	if info.Replayed != 6 {
		t.Errorf("Replayed = %d, want 6", info.Replayed)
	}
	rows := mustExec(t, back, "SELECT id, name FROM birds ORDER BY id").Rows
	if len(rows) != 2 || rows[0].Tuple[1].String() != "Anser cygnoides" {
		t.Fatalf("recovered rows = %v", rows)
	}
	if back.Annotations().Count() != 1 {
		t.Errorf("recovered annotations = %d, want 1", back.Annotations().Count())
	}
	if env := back.StoredEnvelope("birds", 1); env == nil {
		t.Error("summary envelope not rebuilt during recovery")
	}

	// CHECKPOINT publishes a snapshot and rotates the log.
	res := mustExec(t, back, "CHECKPOINT")
	if !strings.Contains(res.Message, "checkpoint complete") {
		t.Errorf("checkpoint message = %q", res.Message)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("snapshot not published: %v", err)
	}
	if size := back.wal.Size(); size != 0 {
		t.Errorf("wal size after checkpoint = %d, want 0", size)
	}
	mustExec(t, back, "INSERT INTO birds VALUES (3, 'Whooper Swan')")
	back.Close()

	// Reopen: snapshot plus a one-record tail.
	again, info := openDurable(t, dir)
	if !info.SnapshotLoaded || info.Replayed != 1 {
		t.Fatalf("post-checkpoint recovery = %+v", info)
	}
	if got := len(mustExec(t, again, "SELECT id FROM birds").Rows); got != 3 {
		t.Errorf("rows after recovery = %d, want 3", got)
	}
}

// TestRecoveredIDAllocation guards the allocator high-water marks: ids of
// rows and annotations deleted before a checkpoint must not be reissued
// after recovery, or late references would silently alias new data.
func TestRecoveredIDAllocation(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE t (id INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	mustExec(t, db, "ADD ANNOTATION 'a' ON t WHERE id = 3")
	mustExec(t, db, "ADD ANNOTATION 'b' ON t WHERE id = 3")
	// Delete the highest row and (by orphaning) the annotations on it.
	mustExec(t, db, "DELETE FROM t WHERE id = 3")
	mustExec(t, db, "CHECKPOINT")
	db.Close()

	back, _ := openDurable(t, dir)
	mustExec(t, back, "INSERT INTO t VALUES (4)")
	id, _, err := back.Annotate(AnnotationRequest{Text: "fresh", Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Errorf("next annotation id after recovery = %d, want 3 (ids 1,2 deleted but not reusable)", id)
	}
	rows := mustExec(t, back, "SELECT id FROM t ORDER BY id").Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAutoCheckpointBySize(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(durableConfig(t), DurabilityOptions{Dir: dir, AutoCheckpointBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Every statement overshoots a 1-byte threshold, so the statement
	// after it checkpoints and the log never accumulates two records.
	mustExec(t, db, "CREATE TABLE t (id INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("auto-checkpoint did not publish a snapshot: %v", err)
	}
	back, info := openDurable(t, dir)
	if !info.SnapshotLoaded {
		t.Error("recovery did not find the auto-checkpoint snapshot")
	}
	if got := len(mustExec(t, back, "SELECT id FROM t").Rows); got != 1 {
		t.Errorf("rows = %d, want 1", got)
	}
}

// TestOpenDurableTornTail simulates a crash mid-append at the file level:
// garbage after the last full record must be truncated away, reported in
// RecoveryInfo, and never fail the startup.
func TestOpenDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDurable(t, dir)
	mustExec(t, db, "CREATE TABLE t (id INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	db.Close()

	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x30, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(walPath)

	back, info := openDurable(t, dir)
	if !info.TornTruncated {
		t.Fatalf("recovery = %+v, want TornTruncated", info)
	}
	if info.Replayed != 2 {
		t.Errorf("Replayed = %d, want 2", info.Replayed)
	}
	after, _ := os.Stat(walPath)
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	if got := len(mustExec(t, back, "SELECT id FROM t").Rows); got != 1 {
		t.Errorf("rows = %d, want 1", got)
	}
}

func TestCheckpointRequiresDurability(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(context.Background(), "CHECKPOINT"); err == nil || !strings.Contains(err.Error(), "data directory") {
		t.Errorf("CHECKPOINT on an in-memory DB: err = %v", err)
	}
}

// TestWALMetricsExposed asserts the insightnotes_wal_* families surface
// through the engine registry (the source of SHOW METRICS and /metrics).
func TestWALMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(Config{CacheDir: t.TempDir()}, DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (id INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	mustExec(t, db, "CHECKPOINT")

	got := map[string]float64{}
	for _, s := range db.Metrics().Samples() {
		got[s.Name] = s.Value
	}
	if got[metrics.NameWALAppendsTotal] != 2 {
		t.Errorf("%s = %v, want 2", metrics.NameWALAppendsTotal, got[metrics.NameWALAppendsTotal])
	}
	if got[metrics.NameWALBytesTotal] <= 0 {
		t.Errorf("%s = %v, want > 0", metrics.NameWALBytesTotal, got[metrics.NameWALBytesTotal])
	}
	if got[metrics.NameWALCheckpointsTotal] != 1 {
		t.Errorf("%s = %v, want 1", metrics.NameWALCheckpointsTotal, got[metrics.NameWALCheckpointsTotal])
	}
	if got[metrics.NameWALSizeBytes] != 0 {
		t.Errorf("%s = %v, want 0 after checkpoint", metrics.NameWALSizeBytes, got[metrics.NameWALSizeBytes])
	}
	// The fsync histogram registers as <name>_count/_sum/_bucket samples.
	found := false
	for name := range got {
		if strings.HasPrefix(name, metrics.NameWALFsyncSeconds) {
			found = true
		}
	}
	if !found {
		t.Errorf("no %s samples registered", metrics.NameWALFsyncSeconds)
	}

	res := mustExec(t, db, "SHOW METRICS LIKE 'insightnotes_wal_%'")
	if len(res.Rows) == 0 {
		t.Error("SHOW METRICS LIKE 'insightnotes_wal_%' returned no rows")
	}
}
