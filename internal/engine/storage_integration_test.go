package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"insightnotes/internal/metrics"
	"insightnotes/internal/storage"
)

// TestPageFileBackedEngine runs a full workload against an engine whose
// page store is file-backed, with a buffer pool small enough that table
// heaps, annotation heaps, and envelope records actually page in and out
// of the file.
func TestPageFileBackedEngine(t *testing.T) {
	dir := t.TempDir()
	pf := filepath.Join(dir, "pages.db")
	db, err := Open(Config{CacheDir: t.TempDir(), PageFile: pf, PoolFrames: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE kv (k INT, v TEXT)")
	mustExec(t, db, "CREATE INDEX ON kv (k)")
	const rows = 2000
	for i := 0; i < rows; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d, 'value-%d')", i, i))
	}
	mustExec(t, db, "ADD ANNOTATION 'paged out and back in' ON kv WHERE k = 7")

	res, err := db.Query(context.Background(), "SELECT v FROM kv WHERE k = 1234")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("point lookup returned %d rows, want 1", len(res.Rows))
	}
	res, err = db.Query(context.Background(), "SELECT k FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != rows {
		t.Fatalf("full scan returned %d rows, want %d", len(res.Rows), rows)
	}

	// The workload is far bigger than 4 frames: the pool must have missed
	// and evicted, and the page file must hold whole pages.
	if _, misses := db.pool.Stats(); misses == 0 {
		t.Error("buffer pool reports zero misses over a 4-frame pool")
	}
	if db.pool.Evictions() == 0 {
		t.Error("buffer pool reports zero evictions over a 4-frame pool")
	}
	fi, err := os.Stat(pf)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 || fi.Size()%storage.PageSize != 0 {
		t.Errorf("page file size = %d, want a positive multiple of %d", fi.Size(), storage.PageSize)
	}

	// The bufferpool counters surface through the metrics registry (the
	// source of SHOW METRICS and /metrics).
	got := map[string]float64{}
	for _, s := range db.Metrics().Samples() {
		got[s.Name] = s.Value
	}
	for _, name := range []string{
		metrics.NameBufferpoolHits,
		metrics.NameBufferpoolMisses,
		metrics.NameBufferpoolEvictions,
	} {
		if got[name] <= 0 {
			t.Errorf("%s = %v, want > 0", name, got[name])
		}
	}
	if res := mustExec(t, db, "SHOW METRICS LIKE 'insightnotes_bufferpool_%'"); len(res.Rows) < 3 {
		t.Errorf("SHOW METRICS LIKE 'insightnotes_bufferpool_%%' returned %d rows, want >= 3", len(res.Rows))
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The page file is an ephemeral paging layer: reopening with the same
	// path must start clean rather than trip over stale pages.
	db2, err := Open(Config{CacheDir: t.TempDir(), PageFile: pf, PoolFrames: 4})
	if err != nil {
		t.Fatalf("reopen with existing page file: %v", err)
	}
	mustExec(t, db2, "CREATE TABLE kv (k INT, v TEXT)")
	mustExec(t, db2, "INSERT INTO kv VALUES (1, 'fresh')")
	if err := db2.Close(); err != nil {
		t.Fatalf("Close after reopen: %v", err)
	}
}

// TestDurablePageFileDefault asserts OpenDurable places the page file
// inside the data directory by default.
func TestDurablePageFileDefault(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(Config{CacheDir: t.TempDir()}, DurabilityOptions{Dir: dir, AutoCheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (id INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if _, err := os.Stat(filepath.Join(dir, pageFileName)); err != nil {
		t.Errorf("durable engine did not create %s in the data dir: %v", pageFileName, err)
	}
}

// TestInstanceIndexAndEnvelopePersistence drives the summary-instance
// index and the envelope heap through annotate, unlink, and retract.
func TestInstanceIndexAndEnvelopePersistence(t *testing.T) {
	db := birdDB(t)
	// Documents attached so the snippet instance forms objects too (snippet
	// summaries only cover annotations that carry a document).
	mustExec(t, db, "ADD ANNOTATION 'observed feeding at dawn' DOCUMENT 'The flock fed at dawn. It moved on at noon.' ON birds WHERE id = 1")
	mustExec(t, db, "ADD ANNOTATION 'lesions suggest avian pox' DOCUMENT 'Lesions were found on the bill. Pox is suspected.' ON birds WHERE id = 2")

	var want []int64
	for _, r := range db.Annotations().AnnotatedRows("birds") {
		want = append(want, int64(r))
	}
	if len(want) != 2 {
		t.Fatalf("AnnotatedRows = %v, want 2 rows", want)
	}
	for _, inst := range []string{"ClassBird1", "SimCluster", "TextSummary1"} {
		var got []int64
		for _, r := range db.envs.rowsForInstance("birds", inst) {
			got = append(got, int64(r))
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rowsForInstance(%s) = %v, want %v", inst, got, want)
		}
	}
	// Every envelope is written through to the heap.
	if n, c := db.envs.heap.Len(), db.envs.count(); n != c {
		t.Errorf("envelope heap holds %d records, store holds %d envelopes", n, c)
	}

	// Unlinking one instance removes exactly its index entries; the
	// envelopes survive with their other objects.
	mustExec(t, db, "UNLINK SUMMARY ClassBird1 FROM birds")
	if got := db.envs.rowsForInstance("birds", "ClassBird1"); len(got) != 0 {
		t.Errorf("rowsForInstance(ClassBird1) after unlink = %v, want none", got)
	}
	if got := db.envs.rowsForInstance("birds", "SimCluster"); len(got) != 2 {
		t.Errorf("rowsForInstance(SimCluster) after unrelated unlink = %v, want 2 rows", got)
	}
	if n, c := db.envs.heap.Len(), db.envs.count(); n != c || c != 2 {
		t.Errorf("after unlink: heap %d records, store %d envelopes, want 2 and 2", n, c)
	}

	// Retracting the annotations empties the envelopes, which drops them
	// from the maps, the instance index, and the heap.
	mustExec(t, db, "DROP ANNOTATION 1")
	mustExec(t, db, "DROP ANNOTATION 2")
	if c := db.envs.count(); c != 0 {
		t.Errorf("envelopes after retracting all annotations = %d, want 0", c)
	}
	if n := db.envs.heap.Len(); n != 0 {
		t.Errorf("envelope heap records after retracting all annotations = %d, want 0", n)
	}
	for _, inst := range []string{"ClassBird1", "SimCluster", "TextSummary1"} {
		if got := db.envs.rowsForInstance("birds", inst); len(got) != 0 {
			t.Errorf("rowsForInstance(%s) after retraction = %v, want none", inst, got)
		}
	}
}
