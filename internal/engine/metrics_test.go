package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// metricValue reads one flattened sample by exact name (0 when absent).
func metricValue(t *testing.T, db *DB, name string) float64 {
	t.Helper()
	for _, s := range db.Metrics().Samples() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

func TestStatementMetrics(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	mustExec(t, db, "SELECT a FROM t")
	mustExec(t, db, "SELECT a FROM t WHERE a > 1")
	if _, err := db.Exec(context.Background(), "SELECT nope FROM t"); err == nil {
		t.Fatal("expected unknown-column error")
	}

	if got := metricValue(t, db, `insightnotes_engine_statements_total{kind="select"}`); got != 3 {
		t.Errorf("select statements = %v, want 3", got)
	}
	if got := metricValue(t, db, `insightnotes_engine_statements_total{kind="insert"}`); got != 1 {
		t.Errorf("insert statements = %v, want 1", got)
	}
	if got := metricValue(t, db, `insightnotes_engine_statement_errors_total{kind="select"}`); got != 1 {
		t.Errorf("select errors = %v, want 1", got)
	}
	// Both successful SELECTs scanned 3 rows each.
	if got := metricValue(t, db, `insightnotes_exec_op_rows_total{op="scan"}`); got < 6 {
		t.Errorf("scan op rows = %v, want >= 6", got)
	}
	if got := metricValue(t, db, "insightnotes_engine_result_rows_total"); got != 5 {
		t.Errorf("result rows = %v, want 5", got)
	}
	// Statement latency histogram saw every statement.
	if got := metricValue(t, db, `insightnotes_engine_statement_seconds_count{kind="select"}`); got != 3 {
		t.Errorf("select latency count = %v, want 3", got)
	}
}

func TestShowMetricsStatement(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	mustExec(t, db, "SELECT a FROM t")

	res := mustExec(t, db, "SHOW METRICS")
	if len(res.Rows) == 0 {
		t.Fatal("SHOW METRICS returned no rows")
	}
	if got := res.Schema.Columns[0].Name; got != "metric" {
		t.Fatalf("first column = %q", got)
	}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		seen[row.Tuple[0].Str()] = true
	}
	for _, want := range []string{
		`insightnotes_engine_statements_total{kind="select"}`,
		"insightnotes_zoomin_cache_puts_total",
		"insightnotes_plan_plans_total",
	} {
		if !seen[want] {
			t.Errorf("SHOW METRICS missing %s", want)
		}
	}

	// LIKE filters by sample-name pattern.
	res = mustExec(t, db, "SHOW METRICS LIKE 'insightnotes_zoomin_cache_%'")
	if len(res.Rows) == 0 {
		t.Fatal("LIKE filter returned no rows")
	}
	for _, row := range res.Rows {
		if name := row.Tuple[0].Str(); !strings.HasPrefix(name, "insightnotes_zoomin_cache_") {
			t.Errorf("LIKE leaked %s", name)
		}
	}
}

func TestMetricsDisabled(t *testing.T) {
	db, err := Open(Config{CacheDir: t.TempDir(), DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if db.Metrics() != nil {
		t.Fatal("Metrics() must be nil when disabled")
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	mustExec(t, db, "SELECT a FROM t")
	res := mustExec(t, db, "SHOW METRICS")
	if len(res.Rows) != 0 || res.Message != "metrics disabled" {
		t.Fatalf("SHOW METRICS with metrics disabled: %+v", res)
	}
}

// TestZoomInCancelledCounter is the regression test for cancelled zoom-ins:
// a zoom-in whose context is already cancelled must abort on the cache-miss
// re-execution path and increment the cancelled counter, leaving no partial
// cache entry behind.
func TestZoomInCancelledCounter(t *testing.T) {
	// A one-byte budget rejects every Put, so the zoom-in below always
	// misses and must re-execute — under a dead context.
	db, err := Open(Config{CacheDir: t.TempDir(), CacheBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	res := mustExec(t, db, "SELECT a FROM t")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, zerr := db.ZoomInContext(ctx, ZoomInRequest{QID: res.QID, Instance: "x", Index: 1})
	if zerr == nil {
		t.Fatal("cancelled zoom-in must fail")
	}
	if !strings.Contains(zerr.Error(), "context canceled") {
		t.Fatalf("unexpected error: %v", zerr)
	}
	if got := metricValue(t, db, "insightnotes_zoomin_cancelled_total"); got != 1 {
		t.Errorf("zoomin cancelled = %v, want 1", got)
	}
	if got := metricValue(t, db, "insightnotes_zoomin_requests_total"); got != 1 {
		t.Errorf("zoomin requests = %v, want 1", got)
	}
	if db.Cache().Contains(res.QID) {
		t.Error("cancelled zoom-in left a cache entry")
	}
}

func TestZoomInCacheCountersExposed(t *testing.T) {
	db := birdDB(t)
	mustExec(t, db, "ADD ANNOTATION 'wingspan measured in the field' ON birds WHERE id = 1")
	res := mustExec(t, db, "SELECT name FROM birds")
	if _, _, err := db.ZoomIn(context.Background(), ZoomInRequest{QID: res.QID, Instance: "ClassBird1", Index: 3}); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, db, "insightnotes_zoomin_cache_hits_total"); got != 1 {
		t.Errorf("cache hits = %v, want 1", got)
	}
	if got := metricValue(t, db, "insightnotes_engine_annotations"); got != 1 {
		t.Errorf("annotations gauge = %v, want 1", got)
	}
	if got := metricValue(t, db, "insightnotes_engine_envelopes"); got != 1 {
		t.Errorf("envelopes gauge = %v, want 1", got)
	}
	if got := metricValue(t, db, "insightnotes_summary_summarize_total"); got == 0 {
		t.Error("summarize total not exposed")
	}
}

func TestDigestCacheCounters(t *testing.T) {
	db := birdDB(t)
	// The ADD computes each summarize-once digest exactly once (misses).
	mustExec(t, db, "ADD ANNOTATION 'observed feeding at dawn' ON birds WHERE id < 3")
	if misses := metricValue(t, db, "insightnotes_summary_digest_misses_total"); misses == 0 {
		t.Error("expected digest misses from first summarization")
	}
	// Re-linking backfills from raw annotations; the cached digest is
	// reused once per (annotation, tuple) pair — two hits here.
	mustExec(t, db, "UNLINK SUMMARY ClassBird1 FROM birds")
	mustExec(t, db, "LINK SUMMARY ClassBird1 TO birds")
	if hits := metricValue(t, db, "insightnotes_summary_digest_hits_total"); hits != 2 {
		t.Errorf("digest hits = %v, want 2", hits)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	db, err := Open(Config{
		CacheDir:           t.TempDir(),
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		SlowQueryLog:       NewJSONSlowQueryLog(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	mustExec(t, db, "SELECT a FROM t WHERE a > 0")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("slow log lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	var e SlowQueryEntry
	if err := json.Unmarshal([]byte(lines[2]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "select" || e.Statement != "SELECT a FROM t WHERE a > 0" {
		t.Fatalf("entry = %+v", e)
	}
	if e.Rows != 2 || e.OpRows == 0 || e.WallMicros < 0 {
		t.Fatalf("entry counters = %+v", e)
	}
	if len(e.Ops) == 0 {
		t.Fatal("SELECT slow entry missing per-op rows")
	}
	foundScan := false
	for _, op := range e.Ops {
		if op.Op == "scan" && op.Rows == 2 {
			foundScan = true
		}
	}
	if !foundScan {
		t.Fatalf("scan op row missing: %+v", e.Ops)
	}
	if got := metricValue(t, db, "insightnotes_engine_slow_queries_total"); got != 3 {
		t.Errorf("slow queries = %v, want 3", got)
	}

	// A cancelled statement records its cause.
	buf.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, qerr := db.QueryContext(ctx, "SELECT a FROM t"); qerr == nil {
		t.Fatal("expected cancellation error")
	}
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &e); err != nil {
		t.Fatal(err)
	}
	if e.Cancelled != "cancel" || e.Error == "" {
		t.Fatalf("cancelled entry = %+v", e)
	}
}

// TestTimingSampling verifies that sampled statements populate the
// per-operator latency histograms without requiring timing on every
// statement.
func TestTimingSampling(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	for i := 0; i < 2*timingSampleInterval; i++ {
		mustExec(t, db, "SELECT a FROM t")
	}
	if got := metricValue(t, db, `insightnotes_exec_op_seconds_count{op="scan"}`); got == 0 {
		t.Error("sampled timing never populated the op latency histogram")
	}
}

func TestPrometheusEndToEnd(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	mustExec(t, db, "SELECT a FROM t")
	var b strings.Builder
	if err := db.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE insightnotes_engine_statements_total counter",
		"# TYPE insightnotes_engine_statement_seconds histogram",
		`insightnotes_engine_statements_total{kind="select"} 1`,
		"insightnotes_zoomin_cache_puts_total 1",
		`insightnotes_plan_access_paths_total{path="full_scan"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, "insightnotes_engine_statement_seconds_bucket{kind=\"select\",le=\"+Inf\"} 0") {
		t.Error("select latency histogram empty")
	}
}
