package exec

import (
	"insightnotes/internal/types"
)

// HashJoin is an equi-join: it builds a hash table over the right input
// keyed on the right key expressions and probes with the left. The output
// row's envelope is the merge of both inputs' envelopes with the right
// side's column coverage shifted past the left width — the paper's
// summary-merging join operator (Figure 2, step 3).
type HashJoin struct {
	instr
	left, right         Operator
	leftKeys, rightKeys []*Compiled
	schema              types.Schema

	build map[uint64][]*Row
	// probe state: buffered left batch, current left row, pending matches
	leftBuf []*Row
	leftIdx int
	cur     *Row
	pending []*Row
	pendIdx int
}

// NewHashJoin creates an equi-join on pairwise-equal compiled keys (left
// keys compiled against the left schema, right keys against the right).
func NewHashJoin(left, right Operator, leftKeys, rightKeys []*Compiled) *HashJoin {
	return &HashJoin{
		left:      left,
		right:     right,
		leftKeys:  leftKeys,
		rightKeys: rightKeys,
		schema:    left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() types.Schema { return j.schema }

// Open implements Operator: builds the hash table over the right input.
// Cancellation during the build aborts via the row-batch polls of the
// right input's leaf operators.
func (j *HashJoin) Open(ec *ExecContext) error {
	if err := j.left.Open(ec); err != nil {
		return err
	}
	if err := j.right.Open(ec); err != nil {
		return err
	}
	j.build = make(map[uint64][]*Row)
	err := drain(ec, j.right, func(row *Row) error {
		key, null, err := j.keyHash(row.Tuple, j.rightKeys)
		if err != nil {
			return err
		}
		if !null { // NULL keys never join
			j.build[key] = append(j.build[key], row)
		}
		return nil
	})
	if err != nil {
		return err
	}
	j.leftBuf = nil
	j.leftIdx = 0
	j.cur = nil
	j.pending = nil
	j.pendIdx = 0
	return nil
}

// keyHash evaluates the key expressions and hashes the resulting values;
// null reports whether any key value was NULL.
func (j *HashJoin) keyHash(tu types.Tuple, keys []*Compiled) (uint64, bool, error) {
	vals := make(types.Tuple, len(keys))
	for i, k := range keys {
		v, err := k.Eval(tu)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, true, nil
		}
		vals[i] = v
	}
	return vals.Hash(nil), false, nil
}

// keysEqual verifies a hash match value-by-value.
func (j *HashJoin) keysEqual(lt, rt types.Tuple) (bool, error) {
	for i := range j.leftKeys {
		lv, err := j.leftKeys[i].Eval(lt)
		if err != nil {
			return false, err
		}
		rv, err := j.rightKeys[i].Eval(rt)
		if err != nil {
			return false, err
		}
		if lv.IsNull() || rv.IsNull() || !types.Equal(lv, rv) {
			return false, nil
		}
	}
	return true, nil
}

// NextBatch implements Operator: probes buffered left rows against the
// build table, accumulating up to one batch of join output per call.
func (j *HashJoin) NextBatch(ec *ExecContext) (*Batch, error) {
	start := j.begin(ec)
	leftWidth := j.left.Schema().Len()
	limit := ec.BatchSize()
	var out []*Row
	for len(out) < limit {
		if j.cur != nil && j.pendIdx < len(j.pending) {
			right := j.pending[j.pendIdx]
			j.pendIdx++
			ok, err := j.keysEqual(j.cur.Tuple, right.Tuple)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			if right.Env != nil {
				j.merged(ec)
			}
			env := envMerge(envClone(j.cur.Env), right.Env, leftWidth)
			out = append(out, &Row{Tuple: j.cur.Tuple.Concat(right.Tuple), Env: env})
			continue
		}
		if j.leftIdx >= len(j.leftBuf) {
			b, err := j.left.NextBatch(ec)
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			j.leftBuf = b.Rows
			j.leftIdx = 0
		}
		row := j.leftBuf[j.leftIdx]
		j.leftIdx++
		key, null, err := j.keyHash(row.Tuple, j.leftKeys)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		j.cur = row
		j.pending = j.build[key]
		j.pendIdx = 0
	}
	if len(out) == 0 {
		j.produced(ec, start, nil)
		return nil, nil
	}
	b := &Batch{Rows: out}
	j.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.build = nil
	j.leftBuf = nil
	j.pending = nil
	if err := j.left.Close(); err != nil {
		j.right.Close()
		return err
	}
	return j.right.Close()
}

// NestedLoopJoin joins on an arbitrary condition compiled against the
// concatenated schema. It materializes the right input once.
type NestedLoopJoin struct {
	instr
	left, right Operator
	cond        *Compiled // nil = cross join
	schema      types.Schema

	rightRows []*Row
	leftBuf   []*Row
	leftIdx   int
	cur       *Row
	ri        int
}

// NewNestedLoopJoin creates a condition join (cond may be nil for a cross
// join; it is compiled against left.Schema().Concat(right.Schema())).
func NewNestedLoopJoin(left, right Operator, cond *Compiled) *NestedLoopJoin {
	return &NestedLoopJoin{
		left:   left,
		right:  right,
		cond:   cond,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() types.Schema { return j.schema }

// Open implements Operator. Cancellation during the right-side
// materialization aborts via the row-batch polls of its leaf operators.
func (j *NestedLoopJoin) Open(ec *ExecContext) error {
	if err := j.left.Open(ec); err != nil {
		return err
	}
	if err := j.right.Open(ec); err != nil {
		return err
	}
	j.rightRows = j.rightRows[:0]
	err := drain(ec, j.right, func(row *Row) error {
		j.rightRows = append(j.rightRows, row)
		return nil
	})
	if err != nil {
		return err
	}
	j.leftBuf = nil
	j.leftIdx = 0
	j.cur = nil
	j.ri = 0
	return nil
}

// NextBatch implements Operator: accumulates up to one batch of join
// output per call, polling cancellation once per call (an unselective
// condition over a large cross product can loop long between outputs).
func (j *NestedLoopJoin) NextBatch(ec *ExecContext) (*Batch, error) {
	if err := ec.checkCancel(); err != nil {
		return nil, err
	}
	start := j.begin(ec)
	leftWidth := j.left.Schema().Len()
	limit := ec.BatchSize()
	var out []*Row
	for len(out) < limit {
		if j.cur == nil || j.ri >= len(j.rightRows) {
			if j.leftIdx >= len(j.leftBuf) {
				b, err := j.left.NextBatch(ec)
				if err != nil {
					return nil, err
				}
				if b == nil {
					j.cur = nil
					break
				}
				j.leftBuf = b.Rows
				j.leftIdx = 0
			}
			j.cur = j.leftBuf[j.leftIdx]
			j.leftIdx++
			j.ri = 0
			continue
		}
		right := j.rightRows[j.ri]
		j.ri++
		joined := j.cur.Tuple.Concat(right.Tuple)
		if j.cond != nil {
			v, err := j.cond.Eval(joined)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		if right.Env != nil {
			j.merged(ec)
		}
		env := envMerge(envClone(j.cur.Env), right.Env, leftWidth)
		out = append(out, &Row{Tuple: joined, Env: env})
	}
	if len(out) == 0 {
		j.produced(ec, start, nil)
		return nil, nil
	}
	b := &Batch{Rows: out}
	j.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.rightRows = nil
	j.leftBuf = nil
	if err := j.left.Close(); err != nil {
		j.right.Close()
		return err
	}
	return j.right.Close()
}
