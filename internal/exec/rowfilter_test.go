package exec

import (
	"testing"

	"insightnotes/internal/annotation"
	"insightnotes/internal/sql"
	"insightnotes/internal/summary"
	"insightnotes/internal/textmining"
	"insightnotes/internal/types"
)

// summaryRows builds in-memory rows with classifier + cluster envelopes:
// row i carries i disease annotations (i = 0..3).
func summaryRows(t *testing.T) (types.Schema, []*Row, *summary.Instance, *summary.Instance) {
	t.Helper()
	nb, err := textmining.NewNaiveBayes([]string{"Behavior", "Disease"})
	if err != nil {
		t.Fatal(err)
	}
	nb.Learn("feeding foraging stonewort", "Behavior")
	nb.Learn("influenza infection lesions", "Disease")
	cls, err := summary.NewClassifierInstance("C", nb)
	if err != nil {
		t.Fatal(err)
	}
	clu, err := summary.NewClusterInstance("S", summary.DefaultSimThreshold)
	if err != nil {
		t.Fatal(err)
	}
	schema := types.NewSchema(types.Column{Table: "t", Name: "id", Kind: types.KindInt})
	var rows []*Row
	nextAnn := annotation.ID(1)
	for i := 0; i < 4; i++ {
		row := &Row{Tuple: types.Tuple{types.NewInt(int64(i))}}
		if i > 0 {
			env := summary.NewEnvelope()
			for k := 0; k < i; k++ {
				a := annotation.Annotation{ID: nextAnn, Text: "influenza infection lesions observed"}
				nextAnn++
				env.Add(cls, cls.Summarize(a), annotation.Col(0))
				env.Add(clu, clu.Summarize(a), annotation.Col(0))
			}
			row.Env = env
		}
		rows = append(rows, row)
	}
	return schema, rows, cls, clu
}

func summaryExpr(t *testing.T, cond string, schema types.Schema) *Compiled {
	t.Helper()
	stmt, err := sql.Parse("SELECT x FROM t WHERE " + cond)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompileRow(stmt.(*sql.Select).Where, schema)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRowFilterSummaryCount(t *testing.T) {
	schema, rows, _, _ := summaryRows(t)
	pred := summaryExpr(t, "SUMMARY_COUNT(C, 'Disease') >= 2", schema)
	if !pred.HasSummaryTerms() {
		t.Error("HasSummaryTerms = false")
	}
	got, err := Collect(NewRowFilter(NewValues(schema, rows), pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Tuple[0].Int() != 2 || got[1].Tuple[0].Int() != 3 {
		t.Fatalf("rows = %v", got)
	}
}

func TestRowFilterTotalAndGroups(t *testing.T) {
	schema, rows, _, _ := summaryRows(t)
	pred := summaryExpr(t, "SUMMARY_TOTAL(S) = 0", schema)
	got, err := Collect(NewRowFilter(NewValues(schema, rows), pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Tuple[0].Int() != 0 {
		t.Fatalf("rows = %v", got)
	}
	pred = summaryExpr(t, "SUMMARY_GROUPS(S) = 1", schema)
	got, err = Collect(NewRowFilter(NewValues(schema, rows), pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 { // all annotated rows cluster into one similar group
		t.Fatalf("rows = %d", len(got))
	}
}

func TestRowFilterTypeMismatches(t *testing.T) {
	schema, rows, _, _ := summaryRows(t)
	for _, cond := range []string{
		"SUMMARY_COUNT(S, 'Disease') > 0", // cluster has no labels
		"SUMMARY_GROUPS(C) > 0",           // classifier has no groups
		"SUMMARY_COUNT(C, 'Missing') > 0", // unknown label
	} {
		pred := summaryExpr(t, cond, schema)
		if _, err := Collect(NewRowFilter(NewValues(schema, rows), pred)); err == nil {
			t.Errorf("%q evaluated without error", cond)
		}
	}
	// Missing instance yields 0, not an error.
	pred := summaryExpr(t, "SUMMARY_TOTAL(NoSuch) = 0", schema)
	got, err := Collect(NewRowFilter(NewValues(schema, rows), pred))
	if err != nil || len(got) != 4 {
		t.Errorf("missing instance: %d rows, %v", len(got), err)
	}
}

func TestRowSortBySummary(t *testing.T) {
	schema, rows, _, _ := summaryRows(t)
	// Sort descending by disease count, ascending id tiebreak.
	countExpr := summaryCallExpr(t, "SUMMARY_COUNT(C, 'Disease')", schema)
	idExpr, err := Compile(&sql.ColRef{Name: "id"}, schema)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := Collect(NewRowSort(NewValues(schema, rows), []SortKey{
		{Expr: countExpr, Desc: true},
		{Expr: idExpr},
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 2, 1, 0}
	for i, w := range want {
		if sorted[i].Tuple[0].Int() != w {
			t.Fatalf("order = %v at %d, want %v", sorted[i].Tuple[0], i, w)
		}
	}
}

// summaryCallExpr compiles a bare summary call via a comparison hack: parse
// "call > -1" and take the left side.
func summaryCallExpr(t *testing.T, call string, schema types.Schema) *Compiled {
	t.Helper()
	stmt, err := sql.Parse("SELECT x FROM t WHERE " + call + " > -1")
	if err != nil {
		t.Fatal(err)
	}
	bin := stmt.(*sql.Select).Where.(*sql.BinaryExpr)
	c, err := CompileRow(bin.L, schema)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileRejectsSummaryCalls(t *testing.T) {
	schema, _, _, _ := summaryRows(t)
	stmt, _ := sql.Parse("SELECT x FROM t WHERE SUMMARY_TOTAL(C) > 0")
	if _, err := Compile(stmt.(*sql.Select).Where, schema); err == nil {
		t.Error("Compile accepted a summary call")
	}
}

func TestHasSummaryCallAndInstances(t *testing.T) {
	stmt, _ := sql.Parse(
		"SELECT x FROM t WHERE SUMMARY_COUNT(A, 'x') > 1 AND NOT (SUMMARY_TOTAL(B) = 0) AND id IS NOT NULL")
	w := stmt.(*sql.Select).Where
	if !HasSummaryCall(w) {
		t.Error("HasSummaryCall = false")
	}
	insts := SummaryInstancesIn(w)
	if len(insts) != 2 || insts[0] != "A" || insts[1] != "B" {
		t.Errorf("instances = %v", insts)
	}
	stmt2, _ := sql.Parse("SELECT x FROM t WHERE id = 1")
	if HasSummaryCall(stmt2.(*sql.Select).Where) {
		t.Error("plain predicate flagged")
	}
	if HasSummaryCall(nil) {
		t.Error("nil flagged")
	}
}

func TestEvalRowWithoutEnvelope(t *testing.T) {
	schema, _, _, _ := summaryRows(t)
	c := summaryCallExpr(t, "SUMMARY_TOTAL(C)", schema)
	v, err := c.EvalRow(&Row{Tuple: types.Tuple{types.NewInt(9)}})
	if err != nil || v.Int() != 0 {
		t.Errorf("EvalRow without env = %v, %v", v, err)
	}
}
