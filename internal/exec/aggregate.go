package exec

import (
	"fmt"

	"insightnotes/internal/annotation"
	"insightnotes/internal/types"
)

// AggSpec describes one aggregate computation: the function name and its
// compiled argument (nil for COUNT(*)).
type AggSpec struct {
	Func string // COUNT, SUM, AVG, MIN, MAX
	Arg  *Compiled
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count int64
	sumI  int64
	sumF  float64
	isInt bool
	init  bool
	minV  types.Value
	maxV  types.Value
}

func (s *aggState) add(v types.Value) {
	if v.IsNull() {
		return
	}
	if !s.init {
		s.init = true
		s.isInt = v.Kind() == types.KindInt
		s.minV, s.maxV = v, v
	}
	s.count++
	switch v.Kind() {
	case types.KindInt:
		s.sumI += v.Int()
		s.sumF += float64(v.Int())
	case types.KindFloat:
		s.isInt = false
		s.sumF += v.Float()
	}
	if types.Compare(v, s.minV) < 0 {
		s.minV = v
	}
	if types.Compare(v, s.maxV) > 0 {
		s.maxV = v
	}
}

func (s *aggState) result(fn string, starCount int64) (types.Value, error) {
	switch fn {
	case "COUNT":
		if starCount >= 0 {
			return types.NewInt(starCount), nil
		}
		return types.NewInt(s.count), nil
	case "SUM":
		if s.count == 0 {
			return types.Null(), nil
		}
		if s.isInt {
			return types.NewInt(s.sumI), nil
		}
		return types.NewFloat(s.sumF), nil
	case "AVG":
		if s.count == 0 {
			return types.Null(), nil
		}
		return types.NewFloat(s.sumF / float64(s.count)), nil
	case "MIN":
		if s.count == 0 {
			return types.Null(), nil
		}
		return s.minV, nil
	case "MAX":
		if s.count == 0 {
			return types.Null(), nil
		}
		return s.maxV, nil
	default:
		return types.Value{}, fmt.Errorf("exec: unknown aggregate %q", fn)
	}
}

// GroupAggregate groups input rows by key expressions and computes
// aggregates per group. With no keys it produces exactly one global row
// (even over empty input). Output schema: group keys then aggregates.
//
// Summary semantics: every group member's envelope is combined into the
// group's output envelope — the paper's grouping transformation — with
// coverage remapped so that an annotation on a key input column follows
// that key's output position and an annotation on an aggregated input
// column follows the aggregate's output position.
type GroupAggregate struct {
	instr
	child   Operator
	keys    []*Compiled
	aggs    []AggSpec
	schema  types.Schema
	mapping []annotation.ColSet

	out []*Row
	pos int
}

// NewGroupAggregate creates the operator. keyCols and aggCols describe the
// output columns for the keys and aggregates respectively.
func NewGroupAggregate(child Operator, keys []*Compiled, keyCols []types.Column,
	aggs []AggSpec, aggCols []types.Column) *GroupAggregate {
	cols := append(append([]types.Column{}, keyCols...), aggCols...)
	mapping := make([]annotation.ColSet, child.Schema().Len())
	for out, k := range keys {
		for _, in := range k.Cols() {
			mapping[in] = mapping[in].Union(annotation.Col(out))
		}
	}
	for ai, a := range aggs {
		out := len(keys) + ai
		if a.Arg != nil {
			for _, in := range a.Arg.Cols() {
				mapping[in] = mapping[in].Union(annotation.Col(out))
			}
		} else {
			// COUNT(*) aggregates the whole tuple: every input column's
			// annotations follow it.
			for in := range mapping {
				mapping[in] = mapping[in].Union(annotation.Col(out))
			}
		}
	}
	return &GroupAggregate{child: child, keys: keys, aggs: aggs,
		schema: types.Schema{Columns: cols}, mapping: mapping}
}

// Schema implements Operator.
func (g *GroupAggregate) Schema() types.Schema { return g.schema }

type aggGroup struct {
	keyVals types.Tuple
	states  []aggState
	star    int64
	env     *Row // env carrier; Tuple unused
}

// Open implements Operator: drains the child and materializes the groups
// in first-seen order. Cancellation mid-materialization aborts via the
// child's row-batch polls.
func (g *GroupAggregate) Open(ec *ExecContext) error {
	if err := g.child.Open(ec); err != nil {
		return err
	}
	groups := make(map[uint64][]*aggGroup)
	var order []*aggGroup
	err := drain(ec, g.child, func(row *Row) error {
		keyVals := make(types.Tuple, len(g.keys))
		for i, k := range g.keys {
			v, err := k.Eval(row.Tuple)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		h := keyVals.Hash(nil)
		var grp *aggGroup
		for _, cand := range groups[h] {
			if cand.keyVals.EqualOn(keyVals, nil) {
				grp = cand
				break
			}
		}
		if grp == nil {
			grp = &aggGroup{keyVals: keyVals, states: make([]aggState, len(g.aggs)), env: &Row{}}
			groups[h] = append(groups[h], grp)
			order = append(order, grp)
		}
		grp.star++
		for i, spec := range g.aggs {
			if spec.Arg == nil {
				continue
			}
			v, err := spec.Arg.Eval(row.Tuple)
			if err != nil {
				return err
			}
			grp.states[i].add(v)
		}
		if row.Env != nil {
			g.curated(ec)
			g.merged(ec)
		}
		grp.env.Env = envCombine(grp.env.Env, envRemap(row.Env, g.mapping))
		return nil
	})
	if err != nil {
		return err
	}
	if len(g.keys) == 0 && len(order) == 0 {
		// Global aggregate over empty input: one row of zero/NULL results.
		order = append(order, &aggGroup{states: make([]aggState, len(g.aggs)), env: &Row{}})
	}
	g.out = g.out[:0]
	for _, grp := range order {
		tu := make(types.Tuple, 0, len(g.keys)+len(g.aggs))
		tu = append(tu, grp.keyVals...)
		for i, spec := range g.aggs {
			star := int64(-1)
			if spec.Func == "COUNT" && spec.Arg == nil {
				star = grp.star
			}
			v, err := grp.states[i].result(spec.Func, star)
			if err != nil {
				return err
			}
			tu = append(tu, v)
		}
		g.out = append(g.out, &Row{Tuple: tu, Env: grp.env.Env})
	}
	g.pos = 0
	return nil
}

// NextBatch implements Operator.
func (g *GroupAggregate) NextBatch(ec *ExecContext) (*Batch, error) {
	start := g.begin(ec)
	b := sliceBatch(g.out, &g.pos, ec.BatchSize())
	if b == nil {
		return nil, nil
	}
	g.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (g *GroupAggregate) Close() error {
	g.out = nil
	return g.child.Close()
}

// Distinct eliminates duplicate tuples, combining the envelopes of the
// eliminated duplicates into the surviving row — the paper's duplicate-
// elimination transformation: a reported tuple's summaries reflect every
// input duplicate's annotations.
type Distinct struct {
	instr
	child Operator
	out   []*Row
	pos   int
}

// NewDistinct wraps child with duplicate elimination.
func NewDistinct(child Operator) *Distinct { return &Distinct{child: child} }

// Schema implements Operator.
func (d *Distinct) Schema() types.Schema { return d.child.Schema() }

// Open implements Operator: duplicate elimination is pipeline-breaking
// because a later duplicate can still add annotations to an earlier
// survivor's envelope.
func (d *Distinct) Open(ec *ExecContext) error {
	if err := d.child.Open(ec); err != nil {
		return err
	}
	seen := make(map[uint64][]*Row)
	d.out = d.out[:0]
	err := drain(ec, d.child, func(row *Row) error {
		h := row.Tuple.Hash(nil)
		var match *Row
		for _, cand := range seen[h] {
			if cand.Tuple.EqualOn(row.Tuple, nil) {
				match = cand
				break
			}
		}
		if match == nil {
			seen[h] = append(seen[h], row)
			d.out = append(d.out, row)
			return nil
		}
		if row.Env != nil {
			d.merged(ec)
		}
		match.Env = envCombine(match.Env, row.Env)
		return nil
	})
	if err != nil {
		return err
	}
	d.pos = 0
	return nil
}

// NextBatch implements Operator.
func (d *Distinct) NextBatch(ec *ExecContext) (*Batch, error) {
	start := d.begin(ec)
	b := sliceBatch(d.out, &d.pos, ec.BatchSize())
	if b == nil {
		return nil, nil
	}
	d.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.out = nil
	return d.child.Close()
}
