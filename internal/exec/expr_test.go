package exec

import (
	"strings"
	"testing"

	"insightnotes/internal/sql"
	"insightnotes/internal/types"
)

// compileWhere parses "SELECT a FROM t WHERE <cond>" and compiles the
// condition against schema.
func compileWhere(t *testing.T, cond string, schema types.Schema) *Compiled {
	t.Helper()
	stmt, err := sql.Parse("SELECT x FROM t WHERE " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	c, err := Compile(stmt.(*sql.Select).Where, schema)
	if err != nil {
		t.Fatalf("compile %q: %v", cond, err)
	}
	return c
}

func exprSchema() types.Schema {
	return types.NewSchema(
		types.Column{Table: "t", Name: "a", Kind: types.KindInt},
		types.Column{Table: "t", Name: "b", Kind: types.KindFloat},
		types.Column{Table: "t", Name: "s", Kind: types.KindString},
		types.Column{Table: "t", Name: "f", Kind: types.KindBool},
	)
}

func exprRow() types.Tuple {
	return types.Tuple{
		types.NewInt(10), types.NewFloat(2.5), types.NewString("swan goose"), types.NewBool(true),
	}
}

func evalCond(t *testing.T, cond string) types.Value {
	t.Helper()
	c := compileWhere(t, cond, exprSchema())
	v, err := c.Eval(exprRow())
	if err != nil {
		t.Fatalf("eval %q: %v", cond, err)
	}
	return v
}

func TestExprComparisons(t *testing.T) {
	truthy := []string{
		"a = 10", "a <> 9", "a != 9", "a < 11", "a <= 10", "a > 9", "a >= 10",
		"b = 2.5", "a > b", "s = 'swan goose'", "f = TRUE",
		"a + 5 = 15", "a - 5 = 5", "a * 2 = 20", "a / 4 = 2.5", "a / 5 = 2",
		"-a = -10", "b * 2 = 5.0", "s + '!' = 'swan goose!'",
	}
	for _, cond := range truthy {
		if v := evalCond(t, cond); !v.Truthy() {
			t.Errorf("%q = %v, want true", cond, v)
		}
	}
	falsy := []string{"a = 9", "a < 10", "s = 'goose'", "f = FALSE"}
	for _, cond := range falsy {
		if v := evalCond(t, cond); v.Truthy() {
			t.Errorf("%q = true, want false", cond)
		}
	}
}

func TestExprNullSemantics(t *testing.T) {
	// Comparisons with NULL are NULL; IS NULL / IS NOT NULL are boolean.
	for _, cond := range []string{"a = NULL", "NULL <> 1", "a + NULL = 10", "NULL LIKE 'x'"} {
		if v := evalCond(t, cond); !v.IsNull() {
			t.Errorf("%q = %v, want NULL", cond, v)
		}
	}
	if v := evalCond(t, "a IS NULL"); v.Truthy() {
		t.Error("a IS NULL = true")
	}
	if v := evalCond(t, "a IS NOT NULL"); !v.Truthy() {
		t.Error("a IS NOT NULL = false")
	}
	// Kleene logic short-circuits.
	if v := evalCond(t, "a = 9 AND NULL = 1"); v.Truthy() || v.IsNull() {
		t.Errorf("false AND NULL = %v, want false", v)
	}
	if v := evalCond(t, "a = 10 OR NULL = 1"); !v.Truthy() {
		t.Errorf("true OR NULL = %v, want true", v)
	}
	if v := evalCond(t, "a = 10 AND NULL = 1"); !v.IsNull() {
		t.Errorf("true AND NULL = %v, want NULL", v)
	}
	if v := evalCond(t, "NOT (NULL = 1)"); !v.IsNull() {
		t.Errorf("NOT NULL = %v, want NULL", v)
	}
}

func TestExprDivisionByZero(t *testing.T) {
	if v := evalCond(t, "a / 0 IS NULL"); !v.Truthy() {
		t.Error("division by zero did not yield NULL")
	}
}

func TestExprLike(t *testing.T) {
	cases := []struct {
		cond string
		want bool
	}{
		{"s LIKE 'swan%'", true},
		{"s LIKE '%goose'", true},
		{"s LIKE '%an go%'", true},
		{"s LIKE 'swan_goose'", true},
		{"s LIKE 'swan'", false},
		{"s LIKE '_wan goose'", true},
		{"s LIKE '%%'", true},
		{"s LIKE ''", false},
	}
	for _, c := range cases {
		if got := evalCond(t, c.cond).Truthy(); got != c.want {
			t.Errorf("%q = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestExprInList(t *testing.T) {
	cases := []struct {
		cond string
		want string // "t", "f", or "null"
	}{
		{"a IN (5, 10, 15)", "t"},
		{"a IN (5, 11)", "f"},
		{"a NOT IN (5, 11)", "t"},
		{"a NOT IN (10)", "f"},
		{"a IN (10, NULL)", "t"},    // match wins over NULL
		{"a IN (11, NULL)", "null"}, // no match + NULL present
		{"NULL IN (1, 2)", "null"},  // NULL subject
		{"s IN ('swan goose', 'x')", "t"},
		{"a IN ('text', 10)", "t"}, // incomparable kinds skipped
	}
	for _, c := range cases {
		v := evalCond(t, c.cond)
		switch c.want {
		case "t":
			if !v.Truthy() {
				t.Errorf("%q = %v, want true", c.cond, v)
			}
		case "f":
			if v.Truthy() || v.IsNull() {
				t.Errorf("%q = %v, want false", c.cond, v)
			}
		case "null":
			if !v.IsNull() {
				t.Errorf("%q = %v, want NULL", c.cond, v)
			}
		}
	}
}

func TestExprBetween(t *testing.T) {
	for _, cond := range []string{
		"a BETWEEN 5 AND 15", "a BETWEEN 10 AND 10", "a NOT BETWEEN 11 AND 20",
		"b BETWEEN 2 AND 3", "s BETWEEN 'a' AND 'z'",
	} {
		if !evalCond(t, cond).Truthy() {
			t.Errorf("%q = false", cond)
		}
	}
	for _, cond := range []string{"a BETWEEN 11 AND 20", "a NOT BETWEEN 5 AND 15"} {
		if evalCond(t, cond).Truthy() {
			t.Errorf("%q = true", cond)
		}
	}
	if !evalCond(t, "a BETWEEN NULL AND 20").IsNull() {
		t.Error("BETWEEN with NULL bound not NULL")
	}
	// Incompatible types error.
	c := compileWhere(t, "a BETWEEN 'x' AND 'y'", exprSchema())
	if _, err := c.Eval(exprRow()); err == nil {
		t.Error("BETWEEN over incompatible types evaluated")
	}
}

func TestExprTypeErrors(t *testing.T) {
	schema := exprSchema()
	for _, cond := range []string{"s > 1", "NOT a", "s * 2 = 4", "f + 1 = 2", "a LIKE 'x'"} {
		c := compileWhere(t, cond, schema)
		if _, err := c.Eval(exprRow()); err == nil {
			t.Errorf("%q evaluated without error", cond)
		}
	}
}

func TestCompileUnknownColumn(t *testing.T) {
	stmt, _ := sql.Parse("SELECT x FROM t WHERE nope = 1")
	if _, err := Compile(stmt.(*sql.Select).Where, exprSchema()); err == nil {
		t.Error("unknown column compiled")
	}
}

func TestCompileAggregateRejected(t *testing.T) {
	stmt, _ := sql.Parse("SELECT x FROM t WHERE COUNT(*) > 1")
	if _, err := Compile(stmt.(*sql.Select).Where, exprSchema()); err == nil {
		t.Error("aggregate compiled in scalar context")
	}
}

func TestCompiledCols(t *testing.T) {
	c := compileWhere(t, "a > 1 AND b < 2 AND a <> 3", exprSchema())
	cols := c.Cols()
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 {
		t.Errorf("Cols = %v", cols)
	}
}

func TestSplitConjuncts(t *testing.T) {
	stmt, _ := sql.Parse("SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3) AND d = 4")
	parts := SplitConjuncts(stmt.(*sql.Select).Where)
	if len(parts) != 3 {
		t.Fatalf("conjuncts = %d", len(parts))
	}
	if !strings.Contains(parts[1].String(), "OR") {
		t.Errorf("middle conjunct = %s", parts[1])
	}
	if got := SplitConjuncts(nil); got != nil {
		t.Errorf("SplitConjuncts(nil) = %v", got)
	}
}

func TestReferencedColumnsAndReferencesOnly(t *testing.T) {
	stmt, _ := sql.Parse("SELECT x FROM t WHERE t.a = 1 AND u.b + t.s = 2")
	w := stmt.(*sql.Select).Where
	refs := ReferencedColumns(w)
	if len(refs) != 3 {
		t.Errorf("refs = %v", refs)
	}
	if ReferencesOnly(w, exprSchema()) {
		t.Error("cross-schema expression claimed single-schema")
	}
	stmt2, _ := sql.Parse("SELECT x FROM t WHERE t.a = 1 AND s LIKE 'x%'")
	if !ReferencesOnly(stmt2.(*sql.Select).Where, exprSchema()) {
		t.Error("single-schema expression rejected")
	}
}

func TestColumnLabel(t *testing.T) {
	stmt, _ := sql.Parse("SELECT t.a, b AS beta, a + 1 FROM t")
	items := stmt.(*sql.Select).Items
	if tb, n := ColumnLabel(items[0]); tb != "t" || n != "a" {
		t.Errorf("label 0 = %q.%q", tb, n)
	}
	if _, n := ColumnLabel(items[1]); n != "beta" {
		t.Errorf("label 1 = %q", n)
	}
	if _, n := ColumnLabel(items[2]); n != "(a + 1)" {
		t.Errorf("label 2 = %q", n)
	}
}
