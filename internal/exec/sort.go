package exec

import (
	"sort"

	"insightnotes/internal/types"
)

// SortKey is one ORDER BY key: a compiled expression and direction.
type SortKey struct {
	Expr *Compiled
	Desc bool
}

// Sort materializes and orders the input rows. The sort is stable so that
// equal keys preserve input order, and it does not touch summary envelopes
// (ordering is a pure data operation).
type Sort struct {
	instr
	child Operator
	keys  []SortKey
	out   []*Row
	pos   int
}

// NewSort wraps child with ORDER BY keys.
func NewSort(child Operator, keys []SortKey) *Sort {
	return &Sort{child: child, keys: keys}
}

// Schema implements Operator.
func (s *Sort) Schema() types.Schema { return s.child.Schema() }

// Open implements Operator.
func (s *Sort) Open(ec *ExecContext) error {
	if err := s.child.Open(ec); err != nil {
		return err
	}
	s.out = s.out[:0]
	type keyed struct {
		row  *Row
		keys types.Tuple
	}
	var rows []keyed
	err := drain(ec, s.child, func(row *Row) error {
		kv := make(types.Tuple, len(s.keys))
		for i, k := range s.keys {
			v, err := k.Expr.Eval(row.Tuple)
			if err != nil {
				return err
			}
			kv[i] = v
		}
		rows = append(rows, keyed{row: row, keys: kv})
		return nil
	})
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, k := range s.keys {
			c := types.Compare(rows[a].keys[i], rows[b].keys[i])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, r := range rows {
		s.out = append(s.out, r.row)
	}
	s.pos = 0
	return nil
}

// NextBatch implements Operator.
func (s *Sort) NextBatch(ec *ExecContext) (*Batch, error) {
	start := s.begin(ec)
	b := sliceBatch(s.out, &s.pos, ec.BatchSize())
	if b == nil {
		return nil, nil
	}
	s.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.out = nil
	return s.child.Close()
}

// Collect drains an operator into a row slice under a background context —
// the convenience entry point for tests and internal drivers.
func Collect(op Operator) ([]*Row, error) {
	return CollectContext(nil, op)
}

// CollectContext drains an operator's batches into a row slice under ec,
// opening and closing it. It is the execution entry point used by the
// engine: the context is checked up front so an already-cancelled
// statement fails fast, and Close cascades even when Open fails partway
// (a join may have opened its children before its build was cancelled).
func CollectContext(ec *ExecContext, op Operator) ([]*Row, error) {
	if err := ec.Err(); err != nil {
		return nil, err
	}
	if err := op.Open(ec); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	var out []*Row
	err := drain(ec, op, func(row *Row) error {
		out = append(out, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
