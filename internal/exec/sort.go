package exec

import (
	"sort"

	"insightnotes/internal/types"
)

// SortKey is one ORDER BY key: a compiled expression and direction.
type SortKey struct {
	Expr *Compiled
	Desc bool
}

// Sort materializes and orders the input rows. The sort is stable so that
// equal keys preserve input order, and it does not touch summary envelopes
// (ordering is a pure data operation).
type Sort struct {
	instr
	child Operator
	keys  []SortKey
	out   []*Row
	pos   int
}

// NewSort wraps child with ORDER BY keys.
func NewSort(child Operator, keys []SortKey) *Sort {
	return &Sort{child: child, keys: keys}
}

// Schema implements Operator.
func (s *Sort) Schema() types.Schema { return s.child.Schema() }

// Open implements Operator.
func (s *Sort) Open(ec *ExecContext) error {
	if err := s.child.Open(ec); err != nil {
		return err
	}
	s.out = s.out[:0]
	type keyed struct {
		row  *Row
		keys types.Tuple
	}
	var rows []keyed
	for {
		row, err := s.child.Next(ec)
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		kv := make(types.Tuple, len(s.keys))
		for i, k := range s.keys {
			v, err := k.Expr.Eval(row.Tuple)
			if err != nil {
				return err
			}
			kv[i] = v
		}
		rows = append(rows, keyed{row: row, keys: kv})
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, k := range s.keys {
			c := types.Compare(rows[a].keys[i], rows[b].keys[i])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, r := range rows {
		s.out = append(s.out, r.row)
	}
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Sort) Next(ec *ExecContext) (*Row, error) {
	if s.pos >= len(s.out) {
		return nil, nil
	}
	start := s.begin(ec)
	r := s.out[s.pos]
	s.pos++
	s.produced(ec, start, r)
	return r, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.out = nil
	return s.child.Close()
}

// Collect drains an operator into a row slice under a background context —
// the convenience entry point for tests and internal drivers.
func Collect(op Operator) ([]*Row, error) {
	return CollectContext(nil, op)
}

// CollectContext drains an operator into a row slice under ec, opening and
// closing it. It is the execution entry point used by the engine: the
// context is checked up front so an already-cancelled statement fails fast,
// and Close cascades even when Open fails partway (a join may have opened
// its children before its build was cancelled).
func CollectContext(ec *ExecContext, op Operator) ([]*Row, error) {
	if err := ec.Err(); err != nil {
		return nil, err
	}
	if err := op.Open(ec); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	var out []*Row
	for {
		row, err := op.Next(ec)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}
