package exec

import (
	"fmt"

	"insightnotes/internal/catalog"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// EnvelopeSource supplies the stored summary envelope of a base-table
// tuple; the engine's summary store implements it. Implementations return
// nil for unannotated tuples and must hand out a private copy (or an
// otherwise immutable envelope): the pipeline mutates what it receives,
// and the engine's background catch-up worker may be updating the live
// envelope concurrently with scans.
type EnvelopeSource interface {
	EnvelopeFor(table string, row types.RowID) *summary.Envelope
}

// estRows carries the planner's estimated output cardinality for a scan
// operator, rendered by EXPLAIN next to the access path so estimated and
// actual (EXPLAIN ANALYZE) row counts sit side by side. The zero value
// means no estimate was attached.
type estRows struct {
	est    int
	hasEst bool
}

// SetEstimatedRows attaches the planner's cardinality estimate.
func (e *estRows) SetEstimatedRows(n int) {
	e.est = n
	e.hasEst = true
}

// EstimatedRows returns the attached estimate, or -1 when none was set.
func (e *estRows) EstimatedRows() int {
	if !e.hasEst {
		return -1
	}
	return e.est
}

// describeEst renders the estimate suffix for Describe (empty when unset).
func (e *estRows) describeEst() string {
	if !e.hasEst {
		return ""
	}
	return fmt.Sprintf(" (est≈%d rows)", e.est)
}

// Scan is a full-table scan producing rows under an alias, each carrying a
// clone of its stored summary envelope.
type Scan struct {
	instr
	estRows
	table  *catalog.Table
	alias  string
	envs   EnvelopeSource
	schema types.Schema

	rows []types.RowID
	tups []types.Tuple
	pos  int
}

// NewScan creates a scan of tbl under alias (empty means the table name).
// envs may be nil for summary-less execution (the raw baseline uses this).
func NewScan(tbl *catalog.Table, alias string, envs EnvelopeSource) *Scan {
	if alias == "" {
		alias = tbl.Name()
	}
	return &Scan{
		table:  tbl,
		alias:  alias,
		envs:   envs,
		schema: tbl.Schema().WithTable(alias),
	}
}

// Schema implements Operator.
func (s *Scan) Schema() types.Schema { return s.schema }

// Open implements Operator: it snapshots the table's rows so concurrent
// DML does not disturb the iteration.
func (s *Scan) Open(ec *ExecContext) error {
	if err := ec.Err(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	s.tups = s.tups[:0]
	s.pos = 0
	return s.table.Scan(func(row types.RowID, tu types.Tuple) bool {
		s.rows = append(s.rows, row)
		s.tups = append(s.tups, tu.Clone())
		return true
	})
}

// NextBatch implements Operator.
func (s *Scan) NextBatch(ec *ExecContext) (*Batch, error) {
	if err := ec.checkCancel(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	start := s.begin(ec)
	end := s.pos + ec.BatchSize()
	if end > len(s.rows) {
		end = len(s.rows)
	}
	out := make([]*Row, 0, end-s.pos)
	for ; s.pos < end; s.pos++ {
		var env *summary.Envelope
		if s.envs != nil {
			env = s.envs.EnvelopeFor(s.table.Name(), s.rows[s.pos])
		}
		out = append(out, &Row{Tuple: s.tups[s.pos], Env: env})
	}
	b := &Batch{Rows: out}
	s.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (s *Scan) Close() error {
	s.rows = nil
	s.tups = nil
	return nil
}

// IndexScan produces the rows of tbl whose column equals a constant, via a
// secondary index.
type IndexScan struct {
	instr
	estRows
	table  *catalog.Table
	alias  string
	col    string
	val    types.Value
	envs   EnvelopeSource
	schema types.Schema

	rows []types.RowID
	pos  int
}

// NewIndexScan creates an index-backed equality scan. The column must be
// indexed; the planner checks before choosing this access path.
func NewIndexScan(tbl *catalog.Table, alias, col string, val types.Value, envs EnvelopeSource) *IndexScan {
	if alias == "" {
		alias = tbl.Name()
	}
	return &IndexScan{
		table:  tbl,
		alias:  alias,
		col:    col,
		val:    val,
		envs:   envs,
		schema: tbl.Schema().WithTable(alias),
	}
}

// Schema implements Operator.
func (s *IndexScan) Schema() types.Schema { return s.schema }

// Open implements Operator.
func (s *IndexScan) Open(ec *ExecContext) error {
	if err := ec.Err(); err != nil {
		return err
	}
	rows, err := s.table.LookupByIndex(s.col, s.val)
	if err != nil {
		return err
	}
	s.rows = rows
	s.pos = 0
	return nil
}

// NextBatch implements Operator.
func (s *IndexScan) NextBatch(ec *ExecContext) (*Batch, error) {
	if err := ec.checkCancel(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	start := s.begin(ec)
	end := s.pos + ec.BatchSize()
	if end > len(s.rows) {
		end = len(s.rows)
	}
	out := make([]*Row, 0, end-s.pos)
	for ; s.pos < end; s.pos++ {
		row := s.rows[s.pos]
		tu, err := s.table.Get(row)
		if err != nil {
			return nil, err
		}
		var env *summary.Envelope
		if s.envs != nil {
			env = s.envs.EnvelopeFor(s.table.Name(), row)
		}
		out = append(out, &Row{Tuple: tu, Env: env})
	}
	b := &Batch{Rows: out}
	s.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (s *IndexScan) Close() error {
	s.rows = nil
	return nil
}

// IndexRangeScan produces the rows of tbl whose indexed column lies in a
// value range, via a B+tree range scan. Nil bounds are open.
type IndexRangeScan struct {
	instr
	estRows
	table  *catalog.Table
	alias  string
	col    string
	lo, hi *types.Value
	loInc  bool
	hiInc  bool
	envs   EnvelopeSource
	schema types.Schema

	rows []types.RowID
	pos  int
}

// NewIndexRangeScan creates an index-backed range scan. The column must be
// indexed; the planner checks before choosing this access path.
func NewIndexRangeScan(tbl *catalog.Table, alias, col string, lo, hi *types.Value,
	loInc, hiInc bool, envs EnvelopeSource) *IndexRangeScan {
	if alias == "" {
		alias = tbl.Name()
	}
	return &IndexRangeScan{
		table: tbl, alias: alias, col: col,
		lo: lo, hi: hi, loInc: loInc, hiInc: hiInc,
		envs:   envs,
		schema: tbl.Schema().WithTable(alias),
	}
}

// Schema implements Operator.
func (s *IndexRangeScan) Schema() types.Schema { return s.schema }

// Open implements Operator.
func (s *IndexRangeScan) Open(ec *ExecContext) error {
	if err := ec.Err(); err != nil {
		return err
	}
	rows, err := s.table.LookupByIndexRange(s.col, s.lo, s.hi, s.loInc, s.hiInc)
	if err != nil {
		return err
	}
	s.rows = rows
	s.pos = 0
	return nil
}

// NextBatch implements Operator.
func (s *IndexRangeScan) NextBatch(ec *ExecContext) (*Batch, error) {
	if err := ec.checkCancel(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	start := s.begin(ec)
	end := s.pos + ec.BatchSize()
	if end > len(s.rows) {
		end = len(s.rows)
	}
	out := make([]*Row, 0, end-s.pos)
	for ; s.pos < end; s.pos++ {
		row := s.rows[s.pos]
		tu, err := s.table.Get(row)
		if err != nil {
			return nil, err
		}
		var env *summary.Envelope
		if s.envs != nil {
			env = s.envs.EnvelopeFor(s.table.Name(), row)
		}
		out = append(out, &Row{Tuple: tu, Env: env})
	}
	b := &Batch{Rows: out}
	s.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (s *IndexRangeScan) Close() error {
	s.rows = nil
	return nil
}

// Describe implements Described.
func (s *IndexRangeScan) Describe() string {
	lo, hi := "-∞", "+∞"
	if s.lo != nil {
		op := ">"
		if s.loInc {
			op = ">="
		}
		lo = op + " " + s.lo.String()
	}
	if s.hi != nil {
		op := "<"
		if s.hiInc {
			op = "<="
		}
		hi = op + " " + s.hi.String()
	}
	return fmt.Sprintf("IndexRangeScan %s AS %s ON %s [%s, %s]%s",
		s.table.Name(), s.alias, s.col, lo, hi, s.describeEst())
}

// Children implements Described.
func (s *IndexRangeScan) Children() []Operator { return nil }

// ValuesOp produces a fixed in-memory row set — used by tests and by
// zoom-in re-filtering of cached results.
type ValuesOp struct {
	instr
	schema types.Schema
	rows   []*Row
	pos    int
}

// NewValues creates an operator over pre-built rows.
func NewValues(schema types.Schema, rows []*Row) *ValuesOp {
	return &ValuesOp{schema: schema, rows: rows}
}

// Schema implements Operator.
func (v *ValuesOp) Schema() types.Schema { return v.schema }

// Open implements Operator.
func (v *ValuesOp) Open(ec *ExecContext) error {
	v.pos = 0
	return ec.Err()
}

// NextBatch implements Operator.
func (v *ValuesOp) NextBatch(ec *ExecContext) (*Batch, error) {
	if err := ec.checkCancel(); err != nil {
		return nil, err
	}
	start := v.begin(ec)
	b := sliceBatch(v.rows, &v.pos, ec.BatchSize())
	if b == nil {
		return nil, nil
	}
	v.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (v *ValuesOp) Close() error { return nil }
