package exec

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"insightnotes/internal/types"
)

// testBatchSize is the small pipeline batch used by the cancellation
// tests, so promptness bounds stay tight.
const testBatchSize = 8

// intValues builds a single-column table of n integer rows.
func intValues(n int) *ValuesOp {
	schema := types.NewSchema(types.Column{Name: "n", Kind: types.KindInt})
	rows := make([]*Row, n)
	for i := range rows {
		rows[i] = &Row{Tuple: types.Tuple{types.NewInt(int64(i))}}
	}
	return NewValues(schema, rows)
}

// cancelAfter passes batches through and fires cancel once the wrapped
// operator has produced n rows — a deterministic mid-execution
// cancellation trigger.
type cancelAfter struct {
	Operator
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfter) NextBatch(ec *ExecContext) (*Batch, error) {
	b, err := c.Operator.NextBatch(ec)
	if b.Len() > 0 {
		c.seen += b.Len()
		if c.seen >= c.n {
			c.cancel()
		}
	}
	return b, err
}

// closeTracker records whether Open and Close reached the wrapped operator.
type closeTracker struct {
	Operator
	opened, closed bool
}

func (c *closeTracker) Open(ec *ExecContext) error {
	c.opened = true
	return c.Operator.Open(ec)
}

func (c *closeTracker) Close() error {
	c.closed = true
	return c.Operator.Close()
}

func TestCancelMidScan(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	values := intValues(40 * testBatchSize)
	op := &cancelAfter{Operator: values, n: 10, cancel: cancel}
	_, err := CollectContext(NewContext(ctx).WithBatchSize(testBatchSize), op)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The cancel fires mid-batch; the producer finishes that batch and the
	// next per-batch poll aborts the statement.
	produced := values.Stats().Rows
	if produced < 10 || produced > int64(10+testBatchSize) {
		t.Fatalf("scan produced %d rows; want cancellation within one batch (%d rows) of the trigger",
			produced, testBatchSize)
	}
}

func TestPreCancelledContextFailsFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Three rows fit in a single batch; the unconditional entry check must
	// still fail the statement before the operator is even opened.
	tracked := &closeTracker{Operator: intValues(3)}
	rows, err := CollectContext(NewContext(ctx), tracked)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(rows) != 0 {
		t.Fatalf("got %d rows from a cancelled statement", len(rows))
	}
	if tracked.opened {
		t.Fatal("operator opened despite pre-cancelled context")
	}
}

func TestDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := CollectContext(NewContext(ctx), intValues(3))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

func TestCancelMidHashJoinBuild(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	left := &closeTracker{Operator: intValues(4)}
	buildInput := &closeTracker{Operator: intValues(40 * testBatchSize)}
	right := &cancelAfter{Operator: buildInput, n: 5, cancel: cancel}
	join := NewHashJoin(left, right,
		[]*Compiled{colRef(t, "n", left.Schema())},
		[]*Compiled{colRef(t, "n", buildInput.Schema())})
	_, err := CollectContext(NewContext(ctx).WithBatchSize(testBatchSize), join)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The join's Open failed mid-build after opening both children; the
	// collector must still cascade Close through the whole tree.
	if !left.opened || !buildInput.opened {
		t.Fatal("join children were not opened before the build cancellation")
	}
	if !left.closed || !buildInput.closed {
		t.Fatalf("leaked open operators after cancelled build: left closed=%v right closed=%v",
			left.closed, buildInput.closed)
	}
}

func TestCancelMidNestedLoopProbe(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	left := &closeTracker{Operator: intValues(50)}
	right := &closeTracker{Operator: intValues(100)}
	join := NewNestedLoopJoin(left, right, nil) // cross join: 5000 inner iterations
	op := &cancelAfter{Operator: join, n: 5, cancel: cancel}
	_, err := CollectContext(NewContext(ctx).WithBatchSize(testBatchSize), op)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if join.Stats().Rows >= 5000 {
		t.Fatal("cross join ran to completion despite cancellation")
	}
	if !left.closed || !right.closed {
		t.Fatalf("leaked open operators: left closed=%v right closed=%v", left.closed, right.closed)
	}
}

func TestExplainAnalyzeCounters(t *testing.T) {
	values := intValues(5)
	limit := NewLimit(values, 3)
	ec := Background().WithTiming()
	rows, err := CollectContext(ec, limit)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	out := ExplainAnalyze(limit)
	// The values leaf produced its full 5-row batch; the limit truncated
	// the batch to 3 rows and never pulled again.
	if !strings.Contains(out, "Limit 3  (rows=3 batches=1") {
		t.Fatalf("EXPLAIN ANALYZE missing limit counters:\n%s", out)
	}
	if !strings.Contains(out, "Values (5 rows)  (rows=5 batches=1") {
		t.Fatalf("EXPLAIN ANALYZE missing values counters:\n%s", out)
	}
	totals := ec.Totals()
	if totals.OpRows != 8 { // 5 from the values leaf + 3 from the limit
		t.Fatalf("statement OpRows = %d, want 8", totals.OpRows)
	}
}

func TestBatchSizeOne(t *testing.T) {
	// Batch size 1 degenerates to the old row-at-a-time protocol and must
	// still produce every row exactly once.
	values := intValues(17)
	rows, err := CollectContext(Background().WithBatchSize(1), values)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 17 {
		t.Fatalf("got %d rows, want 17", len(rows))
	}
	if st := values.Stats(); st.Batches != 17 {
		t.Fatalf("got %d batches, want 17", st.Batches)
	}
}
