package exec

import (
	"testing"

	"insightnotes/internal/annotation"
	"insightnotes/internal/catalog"
	"insightnotes/internal/sql"
	"insightnotes/internal/storage"
	"insightnotes/internal/summary"
	"insightnotes/internal/textmining"
	"insightnotes/internal/types"
)

// testEnvSource is a map-backed EnvelopeSource. Like the engine's store,
// it hands out clones — the pipeline mutates what it receives.
type testEnvSource map[string]map[types.RowID]*summary.Envelope

func (s testEnvSource) EnvelopeFor(table string, row types.RowID) *summary.Envelope {
	env := s[table][row]
	if env == nil {
		return nil
	}
	return env.Clone()
}

// fixture builds tables R(a,b,c) and S(x,z) echoing Figure 2, a classifier
// instance, and per-row envelopes.
type fixture struct {
	cat  *catalog.Catalog
	r, s *catalog.Table
	envs testEnvSource
	cls  *summary.Instance
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cat := catalog.New(storage.NewBufferPool(storage.NewMemStore(), 128))
	r, err := cat.CreateTable("R", types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.CreateTable("S", types.NewSchema(
		types.Column{Name: "x", Kind: types.KindInt},
		types.Column{Name: "z", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := textmining.NewNaiveBayes([]string{"Comment", "Provenance"})
	if err != nil {
		t.Fatal(err)
	}
	nb.Learn("looks wrong needs checking", "Comment")
	nb.Learn("derived from experiment dataset", "Provenance")
	cls, err := summary.NewClassifierInstance("ClassBird2", nb)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		cat: cat, r: r, s: s,
		envs: testEnvSource{"R": {}, "S": {}},
		cls:  cls,
	}
}

// addRow inserts a tuple and attaches n comment annotations covering cols.
func (f *fixture) addRow(t *testing.T, tbl *catalog.Table, tu types.Tuple,
	startAnn annotation.ID, n int, cols annotation.ColSet) types.RowID {
	t.Helper()
	row, err := tbl.Insert(tu)
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		env := summary.NewEnvelope()
		for i := 0; i < n; i++ {
			a := annotation.Annotation{ID: startAnn + annotation.ID(i), Text: "looks wrong needs checking"}
			env.Add(f.cls, f.cls.Summarize(a), cols)
		}
		f.envs[tbl.Name()][row] = env
	}
	return row
}

func colRef(t *testing.T, name string, schema types.Schema) *Compiled {
	t.Helper()
	c, err := Compile(&sql.ColRef{Name: name}, schema)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScanProducesRowsWithEnvelopes(t *testing.T) {
	f := newFixture(t)
	f.addRow(t, f.r, types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("u")}, 1, 3, annotation.WholeRow(3))
	f.addRow(t, f.r, types.Tuple{types.NewInt(2), types.NewInt(3), types.NewString("v")}, 0, 0, 0)
	scan := NewScan(f.r, "r", f.envs)
	rows, err := Collect(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Env == nil || rows[0].Env.Object("ClassBird2").Len() != 3 {
		t.Error("first row envelope missing or wrong")
	}
	if rows[1].Env != nil {
		t.Error("unannotated row has envelope")
	}
	// Scan clones: mutating the result must not corrupt the store.
	rows[0].Env.Project([]int{0})
	if f.envs["R"][1].Object("ClassBird2").Len() != 3 {
		t.Error("scan did not clone the stored envelope")
	}
	if got := scan.Schema().Columns[0].QualifiedName(); got != "r.a" {
		t.Errorf("alias schema = %q", got)
	}
}

func TestFilterPassesEnvelopesUnchanged(t *testing.T) {
	f := newFixture(t)
	f.addRow(t, f.r, types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("u")}, 1, 2, annotation.WholeRow(3))
	f.addRow(t, f.r, types.Tuple{types.NewInt(5), types.NewInt(2), types.NewString("v")}, 10, 1, annotation.WholeRow(3))
	scan := NewScan(f.r, "r", f.envs)
	pred := compileWhere(t, "r.a = 1", scan.Schema())
	rows, err := Collect(NewFilter(scan, pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Tuple[0].Int() != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// Selection does not change summaries (Figure 2 step 2).
	if rows[0].Env.Object("ClassBird2").Len() != 2 {
		t.Error("filter modified the envelope")
	}
}

func TestProjectCuratesEnvelope(t *testing.T) {
	f := newFixture(t)
	row, _ := f.r.Insert(types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("u")})
	env := summary.NewEnvelope()
	// ann 1 on column a (0); ann 2 on column c (2).
	env.Add(f.cls, f.cls.Summarize(annotation.Annotation{ID: 1, Text: "looks wrong"}), annotation.Col(0))
	env.Add(f.cls, f.cls.Summarize(annotation.Annotation{ID: 2, Text: "derived from experiment"}), annotation.Col(2))
	f.envs["R"][row] = env

	scan := NewScan(f.r, "r", f.envs)
	items := []ProjectItem{
		{Expr: colRef(t, "r.a", scan.Schema()), Col: types.Column{Table: "r", Name: "a", Kind: types.KindInt}},
		{Expr: colRef(t, "r.b", scan.Schema()), Col: types.Column{Table: "r", Name: "b", Kind: types.KindInt}},
	}
	rows, err := Collect(NewProject(scan, items))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Tuple) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	got := rows[0].Env.Annotations()
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("surviving annotations = %v (ann 2 on projected-out c must drop)", got)
	}
	if rows[0].Env.Object("ClassBird2").Len() != 1 {
		t.Error("classifier count not decremented")
	}
}

func TestProjectComputedExpressionCoverage(t *testing.T) {
	f := newFixture(t)
	row, _ := f.r.Insert(types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("u")})
	env := summary.NewEnvelope()
	env.Add(f.cls, f.cls.Summarize(annotation.Annotation{ID: 5, Text: "note"}), annotation.Col(1))
	f.envs["R"][row] = env
	scan := NewScan(f.r, "r", f.envs)
	// Output: a+b — annotation on b must follow the computed column.
	sum, err := Compile(&sql.BinaryExpr{Op: "+", L: &sql.ColRef{Name: "r.a"}, R: &sql.ColRef{Name: "r.b"}}, scan.Schema())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(NewProject(scan, []ProjectItem{
		{Expr: sum, Col: types.Column{Name: "sum", Kind: types.KindInt}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Tuple[0].Int() != 3 {
		t.Fatalf("sum = %v", rows[0].Tuple)
	}
	if rows[0].Env == nil || rows[0].Env.Cover[5] != annotation.Col(0) {
		t.Errorf("computed-column coverage = %v", rows[0].Env)
	}
}

func TestHashJoinMergesEnvelopes(t *testing.T) {
	f := newFixture(t)
	f.addRow(t, f.r, types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("u")}, 1, 2, annotation.WholeRow(3))
	f.addRow(t, f.s, types.Tuple{types.NewInt(1), types.NewString("z1")}, 11, 1, annotation.WholeRow(2))
	f.addRow(t, f.s, types.Tuple{types.NewInt(9), types.NewString("z9")}, 12, 1, annotation.WholeRow(2))

	left := NewScan(f.r, "r", f.envs)
	right := NewScan(f.s, "s", f.envs)
	join := NewHashJoin(left, right,
		[]*Compiled{colRef(t, "r.a", left.Schema())},
		[]*Compiled{colRef(t, "s.x", right.Schema())})
	rows, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Tuple) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	env := rows[0].Env
	if env.Object("ClassBird2").Len() != 3 {
		t.Errorf("merged members = %d", env.Object("ClassBird2").Len())
	}
	// Right-side coverage shifted past left width 3.
	if env.Cover[11] != annotation.Col(3).Union(annotation.Col(4)) {
		t.Errorf("right coverage = %v", env.Cover[11])
	}
	if got := join.Schema().Len(); got != 5 {
		t.Errorf("join schema = %d cols", got)
	}
}

func TestHashJoinSharedAnnotationDedup(t *testing.T) {
	f := newFixture(t)
	// The same annotation (id 7) attached to both sides.
	rRow, _ := f.r.Insert(types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("u")})
	sRow, _ := f.s.Insert(types.Tuple{types.NewInt(1), types.NewString("z")})
	shared := annotation.Annotation{ID: 7, Text: "shared note"}
	rEnv := summary.NewEnvelope()
	rEnv.Add(f.cls, f.cls.Summarize(shared), annotation.WholeRow(3))
	sEnv := summary.NewEnvelope()
	sEnv.Add(f.cls, f.cls.Summarize(shared), annotation.WholeRow(2))
	f.envs["R"][rRow] = rEnv
	f.envs["S"][sRow] = sEnv

	left := NewScan(f.r, "r", f.envs)
	right := NewScan(f.s, "s", f.envs)
	rows, err := Collect(NewHashJoin(left, right,
		[]*Compiled{colRef(t, "r.a", left.Schema())},
		[]*Compiled{colRef(t, "s.x", right.Schema())}))
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0].Env.Object("ClassBird2").Len(); got != 1 {
		t.Errorf("shared annotation counted %d times", got)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	f := newFixture(t)
	f.r.Insert(types.Tuple{types.Null(), types.NewInt(2), types.NewString("u")})
	f.s.Insert(types.Tuple{types.Null(), types.NewString("z")})
	left := NewScan(f.r, "r", f.envs)
	right := NewScan(f.s, "s", f.envs)
	rows, err := Collect(NewHashJoin(left, right,
		[]*Compiled{colRef(t, "r.a", left.Schema())},
		[]*Compiled{colRef(t, "s.x", right.Schema())}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("NULL keys joined: %d rows", len(rows))
	}
}

func TestNestedLoopJoinCondition(t *testing.T) {
	f := newFixture(t)
	f.addRow(t, f.r, types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("u")}, 1, 1, annotation.WholeRow(3))
	f.addRow(t, f.r, types.Tuple{types.NewInt(5), types.NewInt(2), types.NewString("v")}, 0, 0, 0)
	f.addRow(t, f.s, types.Tuple{types.NewInt(3), types.NewString("z")}, 21, 1, annotation.WholeRow(2))
	left := NewScan(f.r, "r", f.envs)
	right := NewScan(f.s, "s", f.envs)
	joined := left.Schema().Concat(right.Schema())
	cond, err := Compile(&sql.BinaryExpr{Op: "<", L: &sql.ColRef{Name: "r.a"}, R: &sql.ColRef{Name: "s.x"}}, joined)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(NewNestedLoopJoin(left, right, cond))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Tuple[0].Int() != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Env.Object("ClassBird2").Len() != 2 {
		t.Error("NL join envelope merge wrong")
	}
	// Cross join (nil condition).
	left2 := NewScan(f.r, "r", f.envs)
	right2 := NewScan(f.s, "s", f.envs)
	rows, err = Collect(NewNestedLoopJoin(left2, right2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("cross join rows = %d", len(rows))
	}
}

func TestGroupAggregateValuesAndEnvelopes(t *testing.T) {
	f := newFixture(t)
	f.addRow(t, f.r, types.Tuple{types.NewInt(1), types.NewInt(10), types.NewString("g1")}, 1, 1, annotation.WholeRow(3))
	f.addRow(t, f.r, types.Tuple{types.NewInt(1), types.NewInt(20), types.NewString("g1")}, 2, 1, annotation.WholeRow(3))
	f.addRow(t, f.r, types.Tuple{types.NewInt(2), types.NewInt(30), types.NewString("g2")}, 3, 1, annotation.WholeRow(3))
	scan := NewScan(f.r, "r", f.envs)
	keys := []*Compiled{colRef(t, "r.a", scan.Schema())}
	bArg := colRef(t, "r.b", scan.Schema())
	op := NewGroupAggregate(scan, keys,
		[]types.Column{{Name: "a", Kind: types.KindInt}},
		[]AggSpec{
			{Func: "COUNT"},
			{Func: "SUM", Arg: bArg},
			{Func: "AVG", Arg: bArg},
			{Func: "MIN", Arg: bArg},
			{Func: "MAX", Arg: bArg},
		},
		[]types.Column{
			{Name: "cnt", Kind: types.KindInt},
			{Name: "sum", Kind: types.KindInt},
			{Name: "avg", Kind: types.KindFloat},
			{Name: "min", Kind: types.KindInt},
			{Name: "max", Kind: types.KindInt},
		})
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	g1 := rows[0]
	if g1.Tuple[0].Int() != 1 || g1.Tuple[1].Int() != 2 || g1.Tuple[2].Int() != 30 ||
		g1.Tuple[3].Float() != 15 || g1.Tuple[4].Int() != 10 || g1.Tuple[5].Int() != 20 {
		t.Errorf("group 1 = %v", g1.Tuple)
	}
	// Both group members' annotations combined.
	if g1.Env == nil || g1.Env.Object("ClassBird2").Len() != 2 {
		t.Errorf("group envelope = %v", g1.Env)
	}
}

func TestGroupAggregateGlobalOverEmptyInput(t *testing.T) {
	f := newFixture(t)
	scan := NewScan(f.r, "r", f.envs)
	bArg := colRef(t, "r.b", scan.Schema())
	op := NewGroupAggregate(scan, nil, nil,
		[]AggSpec{{Func: "COUNT"}, {Func: "SUM", Arg: bArg}},
		[]types.Column{{Name: "cnt", Kind: types.KindInt}, {Name: "sum", Kind: types.KindInt}})
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Tuple[0].Int() != 0 || !rows[0].Tuple[1].IsNull() {
		t.Errorf("global empty aggregate = %v", rows[0].Tuple)
	}
}

func TestGroupAggregateCountDistinctNulls(t *testing.T) {
	f := newFixture(t)
	f.r.Insert(types.Tuple{types.NewInt(1), types.Null(), types.NewString("x")})
	f.r.Insert(types.Tuple{types.NewInt(1), types.NewInt(5), types.NewString("x")})
	scan := NewScan(f.r, "r", f.envs)
	bArg := colRef(t, "r.b", scan.Schema())
	op := NewGroupAggregate(scan, nil, nil,
		[]AggSpec{{Func: "COUNT"}, {Func: "COUNT", Arg: bArg}},
		[]types.Column{{Name: "star", Kind: types.KindInt}, {Name: "cnt", Kind: types.KindInt}})
	rows, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	// COUNT(*) counts rows; COUNT(b) skips NULLs.
	if rows[0].Tuple[0].Int() != 2 || rows[0].Tuple[1].Int() != 1 {
		t.Errorf("counts = %v", rows[0].Tuple)
	}
}

func TestDistinctCombinesDuplicateEnvelopes(t *testing.T) {
	f := newFixture(t)
	f.addRow(t, f.r, types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("dup")}, 1, 1, annotation.WholeRow(3))
	f.addRow(t, f.r, types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("dup")}, 2, 1, annotation.WholeRow(3))
	f.addRow(t, f.r, types.Tuple{types.NewInt(9), types.NewInt(9), types.NewString("uniq")}, 0, 0, 0)
	rows, err := Collect(NewDistinct(NewScan(f.r, "r", f.envs)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The surviving duplicate carries both annotations (paper: duplicate
	// elimination merges summaries).
	if rows[0].Env.Object("ClassBird2").Len() != 2 {
		t.Errorf("distinct envelope members = %d", rows[0].Env.Object("ClassBird2").Len())
	}
}

func TestSortAndLimit(t *testing.T) {
	f := newFixture(t)
	for _, v := range []int64{3, 1, 2} {
		f.r.Insert(types.Tuple{types.NewInt(v), types.NewInt(0), types.NewString("x")})
	}
	scan := NewScan(f.r, "r", f.envs)
	keys := []SortKey{{Expr: colRef(t, "r.a", scan.Schema()), Desc: false}}
	rows, err := Collect(NewSort(scan, keys))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Tuple[0].Int() != 1 || rows[2].Tuple[0].Int() != 3 {
		t.Errorf("sorted = %v %v %v", rows[0].Tuple, rows[1].Tuple, rows[2].Tuple)
	}
	// DESC.
	scan2 := NewScan(f.r, "r", f.envs)
	rows, _ = Collect(NewSort(scan2, []SortKey{{Expr: colRef(t, "r.a", scan2.Schema()), Desc: true}}))
	if rows[0].Tuple[0].Int() != 3 {
		t.Errorf("desc sorted head = %v", rows[0].Tuple)
	}
	// Limit.
	scan3 := NewScan(f.r, "r", f.envs)
	rows, _ = Collect(NewLimit(NewSort(scan3, []SortKey{{Expr: colRef(t, "r.a", scan3.Schema())}}), 2))
	if len(rows) != 2 {
		t.Errorf("limit rows = %d", len(rows))
	}
}

func TestIndexScan(t *testing.T) {
	f := newFixture(t)
	for i := int64(0); i < 10; i++ {
		f.addRow(t, f.r, types.Tuple{types.NewInt(i % 3), types.NewInt(i), types.NewString("x")},
			annotation.ID(100+i), 1, annotation.WholeRow(3))
	}
	if err := f.r.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(NewIndexScan(f.r, "r", "a", types.NewInt(1), f.envs))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("index scan rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Tuple[0].Int() != 1 {
			t.Errorf("wrong row %v", r.Tuple)
		}
		if r.Env == nil {
			t.Error("index scan lost envelope")
		}
	}
}

func TestValuesOp(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "v", Kind: types.KindInt})
	rows := []*Row{{Tuple: types.Tuple{types.NewInt(1)}}, {Tuple: types.Tuple{types.NewInt(2)}}}
	got, err := Collect(NewValues(schema, rows))
	if err != nil || len(got) != 2 {
		t.Fatalf("Collect = %v, %v", got, err)
	}
}
