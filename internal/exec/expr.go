// Package exec implements the summary-aware Volcano executor: compiled
// scalar expressions and the extended query operators (scan, filter,
// project, joins, grouping/aggregation, distinct, sort, limit) that
// manipulate and propagate annotation summaries through the pipeline
// alongside the data tuples, as described in Section 2.1 of the paper.
package exec

import (
	"fmt"
	"strings"

	"insightnotes/internal/sql"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// evalCtx carries the evaluation state of one pipeline row: the data
// tuple and (for summary-based predicates) its summary envelope.
type evalCtx struct {
	tuple types.Tuple
	env   *summary.Envelope
}

// Compiled is an expression compiled against a fixed input schema: column
// references are resolved to positions and evaluation is allocation-light.
// Expressions compiled with CompileRow may additionally contain
// summary-based predicate terms (SUMMARY_COUNT and friends), which read
// the row's envelope.
type Compiled struct {
	eval       func(evalCtx) (types.Value, error)
	cols       []int // referenced input column positions, ascending, deduplicated
	src        sql.Expr
	hasSummary bool
}

// Eval evaluates the expression over a tuple of the compiled schema.
// Summary terms see an empty envelope; use EvalRow when they may occur.
func (c *Compiled) Eval(tu types.Tuple) (types.Value, error) {
	return c.eval(evalCtx{tuple: tu})
}

// EvalRow evaluates the expression over a full pipeline row, giving
// summary-based predicate terms access to the envelope.
func (c *Compiled) EvalRow(row *Row) (types.Value, error) {
	return c.eval(evalCtx{tuple: row.Tuple, env: row.Env})
}

// Cols returns the input columns the expression references.
func (c *Compiled) Cols() []int { return c.cols }

// HasSummaryTerms reports whether the expression reads summary envelopes.
func (c *Compiled) HasSummaryTerms() bool { return c.hasSummary }

// String returns the source expression text.
func (c *Compiled) String() string { return c.src.String() }

// Compile resolves and compiles expr against schema. Aggregate calls and
// summary-based predicate terms are rejected — the planner rewrites
// aggregates to internal columns and routes summary terms through
// CompileRow.
func Compile(expr sql.Expr, schema types.Schema) (*Compiled, error) {
	return compileExpr(expr, schema, false)
}

// CompileRow is Compile with summary-based predicate terms permitted; the
// result must be evaluated with EvalRow.
func CompileRow(expr sql.Expr, schema types.Schema) (*Compiled, error) {
	return compileExpr(expr, schema, true)
}

func compileExpr(expr sql.Expr, schema types.Schema, allowSummary bool) (*Compiled, error) {
	cc := &compiler{schema: schema, cols: map[int]bool{}, allowSummary: allowSummary}
	eval, err := cc.compile(expr)
	if err != nil {
		return nil, err
	}
	cols := make([]int, 0, len(cc.cols))
	for i := 0; i < schema.Len(); i++ {
		if cc.cols[i] {
			cols = append(cols, i)
		}
	}
	return &Compiled{eval: eval, cols: cols, src: expr, hasSummary: cc.hasSummary}, nil
}

type evalFunc func(evalCtx) (types.Value, error)

// compiler tracks state across the recursive compilation.
type compiler struct {
	schema       types.Schema
	cols         map[int]bool
	allowSummary bool
	hasSummary   bool
}

func (cc *compiler) compile(expr sql.Expr) (evalFunc, error) {
	schema := cc.schema
	cols := cc.cols
	switch e := expr.(type) {
	case *sql.Literal:
		v := e.Val
		return func(evalCtx) (types.Value, error) { return v, nil }, nil
	case *sql.ColRef:
		ix, err := schema.ColumnIndex(e.Name)
		if err != nil {
			return nil, err
		}
		cols[ix] = true
		return func(c evalCtx) (types.Value, error) { return c.tuple[ix], nil }, nil
	case *sql.SummaryCall:
		if !cc.allowSummary {
			return nil, fmt.Errorf("exec: %s not allowed in this context", e.Func)
		}
		cc.hasSummary = true
		return compileSummaryCall(e)
	case *sql.UnaryExpr:
		x, err := cc.compile(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "NOT":
			return func(c evalCtx) (types.Value, error) {
				v, err := x(c)
				if err != nil || v.IsNull() {
					return v, err
				}
				if v.Kind() != types.KindBool {
					return types.Value{}, fmt.Errorf("exec: NOT over %s", v.Kind())
				}
				return types.NewBool(!v.Bool()), nil
			}, nil
		case "-":
			return func(c evalCtx) (types.Value, error) {
				v, err := x(c)
				if err != nil || v.IsNull() {
					return v, err
				}
				switch v.Kind() {
				case types.KindInt:
					return types.NewInt(-v.Int()), nil
				case types.KindFloat:
					return types.NewFloat(-v.Float()), nil
				default:
					return types.Value{}, fmt.Errorf("exec: unary minus over %s", v.Kind())
				}
			}, nil
		default:
			return nil, fmt.Errorf("exec: unknown unary operator %q", e.Op)
		}
	case *sql.IsNullExpr:
		x, err := cc.compile(e.X)
		if err != nil {
			return nil, err
		}
		neg := e.Negate
		return func(c evalCtx) (types.Value, error) {
			v, err := x(c)
			if err != nil {
				return types.Value{}, err
			}
			return types.NewBool(v.IsNull() != neg), nil
		}, nil
	case *sql.InExpr:
		x, err := cc.compile(e.X)
		if err != nil {
			return nil, err
		}
		items := make([]evalFunc, len(e.List))
		for i, it := range e.List {
			f, err := cc.compile(it)
			if err != nil {
				return nil, err
			}
			items[i] = f
		}
		negate := e.Negate
		return func(c evalCtx) (types.Value, error) {
			xv, err := x(c)
			if err != nil {
				return types.Value{}, err
			}
			if xv.IsNull() {
				return types.Null(), nil
			}
			sawNull := false
			for _, f := range items {
				iv, err := f(c)
				if err != nil {
					return types.Value{}, err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				if comparableKinds(xv.Kind(), iv.Kind()) && types.Equal(xv, iv) {
					return types.NewBool(!negate), nil
				}
			}
			if sawNull {
				return types.Null(), nil // SQL: no match but NULL present
			}
			return types.NewBool(negate), nil
		}, nil
	case *sql.BetweenExpr:
		x, err := cc.compile(e.X)
		if err != nil {
			return nil, err
		}
		lo, err := cc.compile(e.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := cc.compile(e.Hi)
		if err != nil {
			return nil, err
		}
		negate := e.Negate
		return func(c evalCtx) (types.Value, error) {
			xv, err := x(c)
			if err != nil {
				return types.Value{}, err
			}
			lv, err := lo(c)
			if err != nil {
				return types.Value{}, err
			}
			hv, err := hi(c)
			if err != nil {
				return types.Value{}, err
			}
			if xv.IsNull() || lv.IsNull() || hv.IsNull() {
				return types.Null(), nil
			}
			if !comparableKinds(xv.Kind(), lv.Kind()) || !comparableKinds(xv.Kind(), hv.Kind()) {
				return types.Value{}, fmt.Errorf("exec: BETWEEN over incompatible types")
			}
			in := types.Compare(xv, lv) >= 0 && types.Compare(xv, hv) <= 0
			return types.NewBool(in != negate), nil
		}, nil
	case *sql.BinaryExpr:
		l, err := cc.compile(e.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.compile(e.R)
		if err != nil {
			return nil, err
		}
		return compileBinary(e.Op, l, r)
	case *sql.FuncCall:
		return nil, fmt.Errorf("exec: aggregate %s not allowed in a scalar context", e.Name)
	case *sql.Param:
		return nil, fmt.Errorf("exec: parameter $%d is unbound; supply a value via EXECUTE ... USING or client-side args", e.Index)
	default:
		return nil, fmt.Errorf("exec: unsupported expression %T", expr)
	}
}

// compileSummaryCall builds the evaluator of one summary-based predicate
// term. A tuple without the named object yields 0 — unannotated tuples
// simply have zero of everything.
func compileSummaryCall(e *sql.SummaryCall) (evalFunc, error) {
	instance := e.Instance
	label := e.Label
	switch e.Func {
	case "SUMMARY_TOTAL":
		return func(c evalCtx) (types.Value, error) {
			if c.env == nil {
				return types.NewInt(0), nil
			}
			obj := c.env.Object(instance)
			if obj == nil {
				return types.NewInt(0), nil
			}
			return types.NewInt(int64(obj.Len())), nil
		}, nil
	case "SUMMARY_GROUPS":
		return func(c evalCtx) (types.Value, error) {
			if c.env == nil {
				return types.NewInt(0), nil
			}
			obj := c.env.Object(instance)
			if obj == nil {
				return types.NewInt(0), nil
			}
			if g, ok := obj.(interface{ Groups() int }); ok {
				return types.NewInt(int64(g.Groups())), nil
			}
			return types.Value{}, fmt.Errorf("exec: SUMMARY_GROUPS over non-cluster instance %q", instance)
		}, nil
	case "SUMMARY_COUNT":
		return func(c evalCtx) (types.Value, error) {
			if c.env == nil {
				return types.NewInt(0), nil
			}
			obj := c.env.Object(instance)
			if obj == nil {
				return types.NewInt(0), nil
			}
			cls, ok := obj.(interface {
				LabelCount(int) int
				Instance() *summary.Instance
			})
			if !ok {
				return types.Value{}, fmt.Errorf("exec: SUMMARY_COUNT over non-classifier instance %q", instance)
			}
			li := cls.Instance().Classifier.LabelIndex(label)
			if li < 0 {
				return types.Value{}, fmt.Errorf("exec: instance %q has no label %q", instance, label)
			}
			return types.NewInt(int64(cls.LabelCount(li))), nil
		}, nil
	default:
		return nil, fmt.Errorf("exec: unknown summary function %q", e.Func)
	}
}

func compileBinary(op string, l, r evalFunc) (evalFunc, error) {
	switch op {
	case "AND":
		return func(tu evalCtx) (types.Value, error) {
			a, err := l(tu)
			if err != nil {
				return types.Value{}, err
			}
			// Kleene logic: false AND x = false even for NULL x.
			if a.Kind() == types.KindBool && !a.Bool() {
				return types.NewBool(false), nil
			}
			b, err := r(tu)
			if err != nil {
				return types.Value{}, err
			}
			if b.Kind() == types.KindBool && !b.Bool() {
				return types.NewBool(false), nil
			}
			if a.IsNull() || b.IsNull() {
				return types.Null(), nil
			}
			if a.Kind() != types.KindBool || b.Kind() != types.KindBool {
				return types.Value{}, fmt.Errorf("exec: AND over non-boolean")
			}
			return types.NewBool(true), nil
		}, nil
	case "OR":
		return func(tu evalCtx) (types.Value, error) {
			a, err := l(tu)
			if err != nil {
				return types.Value{}, err
			}
			if a.Kind() == types.KindBool && a.Bool() {
				return types.NewBool(true), nil
			}
			b, err := r(tu)
			if err != nil {
				return types.Value{}, err
			}
			if b.Kind() == types.KindBool && b.Bool() {
				return types.NewBool(true), nil
			}
			if a.IsNull() || b.IsNull() {
				return types.Null(), nil
			}
			if a.Kind() != types.KindBool || b.Kind() != types.KindBool {
				return types.Value{}, fmt.Errorf("exec: OR over non-boolean")
			}
			return types.NewBool(false), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return func(tu evalCtx) (types.Value, error) {
			a, err := l(tu)
			if err != nil {
				return types.Value{}, err
			}
			b, err := r(tu)
			if err != nil {
				return types.Value{}, err
			}
			if a.IsNull() || b.IsNull() {
				return types.Null(), nil
			}
			if !comparableKinds(a.Kind(), b.Kind()) {
				return types.Value{}, fmt.Errorf("exec: cannot compare %s with %s", a.Kind(), b.Kind())
			}
			c := types.Compare(a, b)
			var res bool
			switch op {
			case "=":
				res = c == 0
			case "<>":
				res = c != 0
			case "<":
				res = c < 0
			case "<=":
				res = c <= 0
			case ">":
				res = c > 0
			case ">=":
				res = c >= 0
			}
			return types.NewBool(res), nil
		}, nil
	case "+", "-", "*", "/":
		return func(tu evalCtx) (types.Value, error) {
			a, err := l(tu)
			if err != nil {
				return types.Value{}, err
			}
			b, err := r(tu)
			if err != nil {
				return types.Value{}, err
			}
			if a.IsNull() || b.IsNull() {
				return types.Null(), nil
			}
			return arith(op, a, b)
		}, nil
	case "LIKE":
		return func(tu evalCtx) (types.Value, error) {
			a, err := l(tu)
			if err != nil {
				return types.Value{}, err
			}
			b, err := r(tu)
			if err != nil {
				return types.Value{}, err
			}
			if a.IsNull() || b.IsNull() {
				return types.Null(), nil
			}
			if a.Kind() != types.KindString || b.Kind() != types.KindString {
				return types.Value{}, fmt.Errorf("exec: LIKE requires strings")
			}
			return types.NewBool(likeMatch(a.Str(), b.Str())), nil
		}, nil
	default:
		return nil, fmt.Errorf("exec: unknown binary operator %q", op)
	}
}

func comparableKinds(a, b types.Kind) bool {
	if a == b {
		return true
	}
	num := func(k types.Kind) bool { return k == types.KindInt || k == types.KindFloat }
	return num(a) && num(b)
}

func arith(op string, a, b types.Value) (types.Value, error) {
	num := func(v types.Value) bool {
		return v.Kind() == types.KindInt || v.Kind() == types.KindFloat
	}
	if op == "+" && a.Kind() == types.KindString && b.Kind() == types.KindString {
		return types.NewString(a.Str() + b.Str()), nil // string concatenation
	}
	if !num(a) || !num(b) {
		return types.Value{}, fmt.Errorf("exec: %s over %s and %s", op, a.Kind(), b.Kind())
	}
	if a.Kind() == types.KindInt && b.Kind() == types.KindInt && op != "/" {
		x, y := a.Int(), b.Int()
		switch op {
		case "+":
			return types.NewInt(x + y), nil
		case "-":
			return types.NewInt(x - y), nil
		case "*":
			return types.NewInt(x * y), nil
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case "+":
		return types.NewFloat(x + y), nil
	case "-":
		return types.NewFloat(x - y), nil
	case "*":
		return types.NewFloat(x * y), nil
	case "/":
		if y == 0 {
			return types.Null(), nil // SQL-style: division by zero yields NULL here
		}
		// Integer division stays integral when exact, else float.
		if a.Kind() == types.KindInt && b.Kind() == types.KindInt && a.Int()%b.Int() == 0 {
			return types.NewInt(a.Int() / b.Int()), nil
		}
		return types.NewFloat(x / y), nil
	}
	return types.Value{}, fmt.Errorf("exec: unknown arithmetic operator %q", op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune),
// case-sensitive, via iterative backtracking.
func likeMatch(s, pattern string) bool {
	sr := []rune(s)
	pr := []rune(pattern)
	si, pi := 0, 0
	starSi, starPi := -1, -1
	for si < len(sr) {
		switch {
		case pi < len(pr) && (pr[pi] == '_' || pr[pi] == sr[si]):
			si++
			pi++
		case pi < len(pr) && pr[pi] == '%':
			starPi = pi
			starSi = si
			pi++
		case starPi >= 0:
			starSi++
			si = starSi
			pi = starPi + 1
		default:
			return false
		}
	}
	for pi < len(pr) && pr[pi] == '%' {
		pi++
	}
	return pi == len(pr)
}

// SplitConjuncts flattens a WHERE expression into its AND-ed conjuncts,
// the unit of predicate pushdown.
func SplitConjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinaryExpr); ok && b.Op == "AND" {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []sql.Expr{e}
}

// ReferencedColumns returns the column references in an expression (without
// resolving them).
func ReferencedColumns(e sql.Expr) []string {
	var out []string
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.ColRef:
			out = append(out, x.Name)
		case *sql.BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *sql.UnaryExpr:
			walk(x.X)
		case *sql.IsNullExpr:
			walk(x.X)
		case *sql.InExpr:
			walk(x.X)
			for _, it := range x.List {
				walk(it)
			}
		case *sql.BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sql.FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

// HasSummaryCall reports whether e contains a summary-based predicate
// term.
func HasSummaryCall(e sql.Expr) bool {
	found := false
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.SummaryCall:
			found = true
		case *sql.BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *sql.UnaryExpr:
			walk(x.X)
		case *sql.IsNullExpr:
			walk(x.X)
		case *sql.InExpr:
			walk(x.X)
			for _, it := range x.List {
				walk(it)
			}
		case *sql.BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sql.FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return found
}

// SummaryInstancesIn returns the instance names referenced by summary
// terms in e.
func SummaryInstancesIn(e sql.Expr) []string {
	var out []string
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.SummaryCall:
			out = append(out, x.Instance)
		case *sql.BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *sql.UnaryExpr:
			walk(x.X)
		case *sql.IsNullExpr:
			walk(x.X)
		case *sql.InExpr:
			walk(x.X)
			for _, it := range x.List {
				walk(it)
			}
		case *sql.BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sql.FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

// ReferencesOnly reports whether every column reference in e resolves in
// schema — the pushdown test for single-relation predicates.
func ReferencesOnly(e sql.Expr, schema types.Schema) bool {
	for _, ref := range ReferencedColumns(e) {
		if !schema.HasColumn(ref) {
			return false
		}
	}
	return true
}

// ColumnLabel derives a display name for a select item: the alias when
// given, a bare/qualified column name for plain references, otherwise the
// expression text.
func ColumnLabel(item sql.SelectItem) (table, name string) {
	if item.Alias != "" {
		return "", item.Alias
	}
	if cr, ok := item.Expr.(*sql.ColRef); ok {
		return types.SplitQualified(cr.Name)
	}
	return "", strings.ToLower(item.Expr.String())
}
