package exec

import (
	"context"
	"time"
)

// CancelCheckInterval is the row-batch granularity of cooperative
// cancellation: row-producing leaf operators poll the statement context
// once every this many Next calls, so long scans, join builds, and
// zoom-in re-executions abort promptly without paying a context poll on
// every row.
const CancelCheckInterval = 32

// StatementTotals are the statement-wide execution counters accumulated
// across every operator of one statement's plan.
type StatementTotals struct {
	// OpRows is the total number of rows produced by all operators
	// (intermediate rows included) — a proxy for pipeline work.
	OpRows int64
	// Merges counts envelope merge/combine operations (joins, grouping,
	// duplicate elimination).
	Merges int64
	// Curates counts envelope curation operations (projection coverage
	// remapping).
	Curates int64
}

// ExecContext is the per-statement execution context threaded through
// every Operator.Open/Next call. It carries the caller's cancellation
// context, the per-statement runtime statistics collector, and — when the
// under-the-hood trace is requested — the per-statement trace sink.
//
// One ExecContext belongs to exactly one statement execution on one
// goroutine; it is not safe for concurrent use. A nil *ExecContext is
// tolerated everywhere (no cancellation, no stats, no trace), which keeps
// ad-hoc operator drivers in tests simple.
type ExecContext struct {
	ctx    context.Context
	calls  int
	timed  bool
	trace  *TraceSink
	totals StatementTotals
	start  time.Time
}

// NewContext creates an execution context over ctx (nil means
// context.Background()).
func NewContext(ctx context.Context) *ExecContext {
	if ctx == nil {
		ctx = context.Background()
	}
	return &ExecContext{ctx: ctx, start: time.Now()}
}

// Background is a context with no cancellation, for tests and internal
// drivers.
func Background() *ExecContext { return NewContext(context.Background()) }

// WithTrace attaches a fresh per-statement trace sink and returns ec.
func (ec *ExecContext) WithTrace() *ExecContext {
	ec.trace = &TraceSink{}
	return ec
}

// WithTiming enables per-operator wall-time collection (EXPLAIN ANALYZE)
// and returns ec. Timing is opt-in because it costs two clock reads per
// operator per row.
func (ec *ExecContext) WithTiming() *ExecContext {
	ec.timed = true
	return ec
}

// Context returns the underlying cancellation context.
func (ec *ExecContext) Context() context.Context {
	if ec == nil {
		return context.Background()
	}
	return ec.ctx
}

// Tracing reports whether the under-the-hood trace is being collected.
func (ec *ExecContext) Tracing() bool { return ec != nil && ec.trace != nil }

// TraceEntries returns the accumulated trace entries (nil when tracing was
// not enabled).
func (ec *ExecContext) TraceEntries() []TraceEntry {
	if ec == nil || ec.trace == nil {
		return nil
	}
	return ec.trace.Entries()
}

// Totals returns the statement-wide counters accumulated so far.
func (ec *ExecContext) Totals() StatementTotals {
	if ec == nil {
		return StatementTotals{}
	}
	return ec.totals
}

// Elapsed is the wall time since the context was created.
func (ec *ExecContext) Elapsed() time.Duration {
	if ec == nil {
		return 0
	}
	return time.Since(ec.start)
}

// Err polls the underlying context unconditionally — used at statement
// entry so an already-cancelled or expired context fails fast regardless
// of input size.
func (ec *ExecContext) Err() error {
	if ec == nil {
		return nil
	}
	return ec.ctx.Err()
}

// checkCancel is the row-batch cancellation poll called by row-producing
// leaf operators on every Next: the shared call counter keeps the poll
// rate bounded at one context check per CancelCheckInterval rows across
// the whole plan.
func (ec *ExecContext) checkCancel() error {
	if ec == nil {
		return nil
	}
	ec.calls++
	if ec.calls%CancelCheckInterval != 0 {
		return nil
	}
	return ec.ctx.Err()
}

// ---- per-operator instrumentation ----

// OpStats are the runtime counters of one operator instance, surfaced by
// EXPLAIN ANALYZE.
type OpStats struct {
	// Rows produced by Next over the operator's lifetime.
	Rows int64
	// Merges counts envelope merge/combine operations performed here.
	Merges int64
	// Curates counts envelope curation (coverage remap) operations.
	Curates int64
	// Wall is cumulative time spent inside Next, inclusive of children.
	// Collected only when the context enables timing.
	Wall time.Duration
}

// Instrumented is implemented by operators exposing runtime counters; all
// operators in this package implement it via the embedded instr.
type Instrumented interface {
	Stats() OpStats
}

// instr is the embedded per-operator stats carrier.
type instr struct {
	st OpStats
}

// Stats implements Instrumented.
func (i *instr) Stats() OpStats { return i.st }

// begin starts a wall-time measurement when timing is enabled.
func (i *instr) begin(ec *ExecContext) time.Time {
	if ec == nil || !ec.timed {
		return time.Time{}
	}
	return time.Now()
}

// produced records a Next outcome: a row (nil at end of stream) and the
// elapsed wall time when timing is enabled.
func (i *instr) produced(ec *ExecContext, start time.Time, row *Row) {
	if row != nil {
		i.st.Rows++
		if ec != nil {
			ec.totals.OpRows++
		}
	}
	if ec != nil && ec.timed {
		i.st.Wall += time.Since(start)
	}
}

// merged records one envelope merge/combine operation.
func (i *instr) merged(ec *ExecContext) {
	i.st.Merges++
	if ec != nil {
		ec.totals.Merges++
	}
}

// curated records one envelope curation operation.
func (i *instr) curated(ec *ExecContext) {
	i.st.Curates++
	if ec != nil {
		ec.totals.Curates++
	}
}
