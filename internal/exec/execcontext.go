package exec

import (
	"context"
	"time"

	"insightnotes/internal/trace"
)

// DefaultBatchSize is the number of rows moved per NextBatch call when the
// statement does not override it. Large enough to amortize per-batch
// overhead (cancellation poll, clock reads, virtual dispatch), small
// enough to keep a batch of tuples plus envelopes cache-resident.
const DefaultBatchSize = 256

// DefaultMorselSize is the number of base-table rows in one morsel of a
// parallel scan — the unit of work a worker claims at a time. A few
// batches' worth: big enough that claiming is cheap, small enough that
// work stays balanced across workers.
const DefaultMorselSize = 1024

// StatementTotals are the statement-wide execution counters accumulated
// across every operator of one statement's plan.
type StatementTotals struct {
	// OpRows is the total number of rows produced by all operators
	// (intermediate rows included) — a proxy for pipeline work.
	OpRows int64
	// Merges counts envelope merge/combine operations (joins, grouping,
	// duplicate elimination).
	Merges int64
	// Curates counts envelope curation operations (projection coverage
	// remapping).
	Curates int64
}

// ExecContext is the per-statement execution context threaded through
// every Operator.Open/NextBatch call. It carries the caller's cancellation
// context, the statement's batch size, the per-statement runtime
// statistics collector, and — when the under-the-hood trace is requested —
// the per-statement trace sink.
//
// One ExecContext belongs to exactly one statement execution on one
// goroutine; it is not safe for concurrent use. Parallel operators give
// each worker a private fork (forkWorker) and fold the workers' counters
// back when the pipeline drains. A nil *ExecContext is tolerated
// everywhere (no cancellation, no stats, no trace), which keeps ad-hoc
// operator drivers in tests simple.
type ExecContext struct {
	ctx   context.Context
	batch int
	// timed enables per-operator wall-time collection; sampled additionally
	// feeds those walls into the insightnotes_exec_op_seconds histograms.
	// Both are set together by WithTiming; lifecycle tracing (WithSpan)
	// leaves them off so traced statements don't pay per-batch clock reads.
	timed   bool
	sampled bool
	trace   *TraceSink
	// span is the statement's lifecycle exec span; operator spans are
	// synthesized under it from the per-operator stats after the plan
	// drains, so stats and spans share this one plumbing.
	span   *trace.SpanHandle
	totals StatementTotals
	start  time.Time
}

// NewContext creates an execution context over ctx (nil means
// context.Background()).
func NewContext(ctx context.Context) *ExecContext {
	if ctx == nil {
		ctx = context.Background()
	}
	return &ExecContext{ctx: ctx, start: time.Now()}
}

// Background is a context with no cancellation, for tests and internal
// drivers.
func Background() *ExecContext { return NewContext(context.Background()) }

// WithTrace attaches a fresh per-statement trace sink and returns ec.
func (ec *ExecContext) WithTrace() *ExecContext {
	ec.trace = &TraceSink{}
	return ec
}

// WithTiming enables per-operator wall-time collection AND histogram
// feeding (EXPLAIN ANALYZE and the engine's sampled statements) and
// returns ec. Timing is opt-in because it costs two clock reads per
// operator per batch.
func (ec *ExecContext) WithTiming() *ExecContext {
	ec.timed = true
	ec.sampled = true
	return ec
}

// WithSpan attaches the statement's lifecycle exec span and returns ec.
// Attaching a span deliberately does NOT enable per-batch wall-time
// collection: operator spans synthesized from the stats carry row counts
// on every traced statement, but their walls are populated only for the
// histogram-sampled subset (WithTiming) — two clock reads per operator
// per batch is too expensive to pay on the untraced fast path's budget.
func (ec *ExecContext) WithSpan(sp *trace.SpanHandle) *ExecContext {
	ec.span = sp
	return ec
}

// Span returns the statement's lifecycle exec span (nil when the statement
// is not being traced).
func (ec *ExecContext) Span() *trace.SpanHandle {
	if ec == nil {
		return nil
	}
	return ec.span
}

// HistogramSampled reports whether this statement's operator walls feed
// the latency histograms (the sampled subset of timed statements).
func (ec *ExecContext) HistogramSampled() bool { return ec != nil && ec.sampled }

// WithBatchSize overrides the pipeline batch size (rows per NextBatch
// call) and returns ec. Values below one fall back to DefaultBatchSize.
func (ec *ExecContext) WithBatchSize(n int) *ExecContext {
	ec.batch = n
	return ec
}

// BatchSize is the number of rows an operator should aim to produce per
// NextBatch call.
func (ec *ExecContext) BatchSize() int {
	if ec == nil || ec.batch < 1 {
		return DefaultBatchSize
	}
	return ec.batch
}

// forkWorker returns a private execution context for one worker goroutine
// of a parallel operator: it shares the cancellation context, batch size,
// and timing flag, but owns its counters — the parallel operator folds
// worker counters back into the parent when the pipeline drains, so the
// parent's totals are never written concurrently.
func (ec *ExecContext) forkWorker() *ExecContext {
	if ec == nil {
		return nil
	}
	// The lifecycle span handle stays with the parent: workers must not
	// write spans concurrently; operator spans are synthesized post-drain.
	return &ExecContext{ctx: ec.ctx, batch: ec.batch, timed: ec.timed, sampled: ec.sampled, start: ec.start}
}

// foldWorker adds a drained worker fork's statement totals into ec. Called
// by the owning parallel operator after the worker goroutine has exited.
func (ec *ExecContext) foldWorker(w *ExecContext) {
	if ec == nil || w == nil {
		return
	}
	ec.totals.OpRows += w.totals.OpRows
	ec.totals.Merges += w.totals.Merges
	ec.totals.Curates += w.totals.Curates
}

// Context returns the underlying cancellation context.
func (ec *ExecContext) Context() context.Context {
	if ec == nil {
		return context.Background()
	}
	return ec.ctx
}

// Tracing reports whether the under-the-hood trace is being collected.
func (ec *ExecContext) Tracing() bool { return ec != nil && ec.trace != nil }

// TraceEntries returns the accumulated trace entries (nil when tracing was
// not enabled).
func (ec *ExecContext) TraceEntries() []TraceEntry {
	if ec == nil || ec.trace == nil {
		return nil
	}
	return ec.trace.Entries()
}

// Totals returns the statement-wide counters accumulated so far.
func (ec *ExecContext) Totals() StatementTotals {
	if ec == nil {
		return StatementTotals{}
	}
	return ec.totals
}

// Elapsed is the wall time since the context was created.
func (ec *ExecContext) Elapsed() time.Duration {
	if ec == nil {
		return 0
	}
	return time.Since(ec.start)
}

// Err polls the underlying context unconditionally — used at statement
// entry so an already-cancelled or expired context fails fast regardless
// of input size.
func (ec *ExecContext) Err() error {
	if ec == nil {
		return nil
	}
	return ec.ctx.Err()
}

// checkCancel is the batch-granularity cancellation poll: row-producing
// leaf operators (and parallel workers, per morsel) call it once per
// NextBatch, so a statement observes cancellation within one batch of
// rows without paying a context poll per row.
func (ec *ExecContext) checkCancel() error {
	if ec == nil {
		return nil
	}
	return ec.ctx.Err()
}

// ---- per-operator instrumentation ----

// OpStats are the runtime counters of one operator instance, surfaced by
// EXPLAIN ANALYZE.
type OpStats struct {
	// Rows produced by NextBatch over the operator's lifetime.
	Rows int64
	// Batches produced over the operator's lifetime.
	Batches int64
	// Merges counts envelope merge/combine operations performed here.
	Merges int64
	// Curates counts envelope curation (coverage remap) operations.
	Curates int64
	// Wall is cumulative time spent inside NextBatch, inclusive of
	// children. For parallel operators it is the busiest worker's time
	// (the operator's critical path), not the sum across workers.
	// Collected only when the context enables timing.
	Wall time.Duration
	// Workers is the number of worker goroutines that executed the
	// operator (0 for serial operators).
	Workers int
	// Morsels is the number of morsels processed by a parallel scan
	// (0 for serial operators).
	Morsels int64
}

// Instrumented is implemented by operators exposing runtime counters; all
// operators in this package implement it via the embedded instr.
type Instrumented interface {
	Stats() OpStats
}

// instr is the embedded per-operator stats carrier.
type instr struct {
	st OpStats
}

// Stats implements Instrumented.
func (i *instr) Stats() OpStats { return i.st }

// begin starts a wall-time measurement when timing is enabled.
func (i *instr) begin(ec *ExecContext) time.Time {
	if ec == nil || !ec.timed {
		return time.Time{}
	}
	return time.Now()
}

// produced records a NextBatch outcome: a batch (nil at end of stream) and
// the elapsed wall time when timing is enabled.
func (i *instr) produced(ec *ExecContext, start time.Time, b *Batch) {
	if n := b.Len(); n > 0 {
		i.st.Rows += int64(n)
		i.st.Batches++
		if ec != nil {
			ec.totals.OpRows += int64(n)
		}
	}
	if ec != nil && ec.timed {
		i.st.Wall += time.Since(start)
	}
}

// merged records one envelope merge/combine operation.
func (i *instr) merged(ec *ExecContext) {
	i.st.Merges++
	if ec != nil {
		ec.totals.Merges++
	}
}

// curated records one envelope curation operation.
func (i *instr) curated(ec *ExecContext) {
	i.st.Curates++
	if ec != nil {
		ec.totals.Curates++
	}
}
