package exec

import (
	"sort"

	"insightnotes/internal/types"
)

// RowFilter is Filter for predicates that read summary envelopes
// (summary-based predicates, §2.1): the predicate is evaluated over the
// full pipeline row rather than the data tuple alone. The summaries a
// predicate observes are the ones flowing at that plan position — for
// predicates over a base relation, the maintained (stored) summaries.
type RowFilter struct {
	instr
	child Operator
	pred  *Compiled // compiled with CompileRow
}

// NewRowFilter wraps child with a row-level predicate.
func NewRowFilter(child Operator, pred *Compiled) *RowFilter {
	return &RowFilter{child: child, pred: pred}
}

// Schema implements Operator.
func (f *RowFilter) Schema() types.Schema { return f.child.Schema() }

// Open implements Operator.
func (f *RowFilter) Open(ec *ExecContext) error { return f.child.Open(ec) }

// NextBatch implements Operator: child batches are filtered on the full
// pipeline rows; fully-filtered batches are skipped so the operator never
// emits an empty batch.
func (f *RowFilter) NextBatch(ec *ExecContext) (*Batch, error) {
	start := f.begin(ec)
	for {
		b, err := f.child.NextBatch(ec)
		if err != nil || b == nil {
			f.produced(ec, start, nil)
			return nil, err
		}
		out := make([]*Row, 0, len(b.Rows))
		for _, row := range b.Rows {
			v, err := f.pred.EvalRow(row)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				out = append(out, row)
			}
		}
		if len(out) == 0 {
			continue
		}
		res := &Batch{Rows: out}
		f.produced(ec, start, res)
		return res, nil
	}
}

// Close implements Operator.
func (f *RowFilter) Close() error { return f.child.Close() }

// RowSort is Sort for keys that read summary envelopes — the paper's
// "sorting the data tuples according to summary-based predicates". Keys
// are evaluated over the rows as reported (post-projection summaries).
type RowSort struct {
	instr
	child Operator
	keys  []SortKey // Exprs compiled with CompileRow
	out   []*Row
	pos   int
}

// NewRowSort wraps child with row-level sort keys.
func NewRowSort(child Operator, keys []SortKey) *RowSort {
	return &RowSort{child: child, keys: keys}
}

// Schema implements Operator.
func (s *RowSort) Schema() types.Schema { return s.child.Schema() }

// Open implements Operator.
func (s *RowSort) Open(ec *ExecContext) error {
	if err := s.child.Open(ec); err != nil {
		return err
	}
	s.out = s.out[:0]
	type keyed struct {
		row  *Row
		keys types.Tuple
	}
	var rows []keyed
	err := drain(ec, s.child, func(row *Row) error {
		kv := make(types.Tuple, len(s.keys))
		for i, k := range s.keys {
			v, err := k.Expr.EvalRow(row)
			if err != nil {
				return err
			}
			kv[i] = v
		}
		rows = append(rows, keyed{row: row, keys: kv})
		return nil
	})
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, k := range s.keys {
			c := types.Compare(rows[a].keys[i], rows[b].keys[i])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, r := range rows {
		s.out = append(s.out, r.row)
	}
	s.pos = 0
	return nil
}

// NextBatch implements Operator.
func (s *RowSort) NextBatch(ec *ExecContext) (*Batch, error) {
	start := s.begin(ec)
	b := sliceBatch(s.out, &s.pos, ec.BatchSize())
	if b == nil {
		return nil, nil
	}
	s.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (s *RowSort) Close() error {
	s.out = nil
	return s.child.Close()
}
