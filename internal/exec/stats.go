package exec

// OperatorName maps an operator instance to its stable snake_case metric
// label. These names are the {op} label values of the
// insightnotes_exec_op_* metric families, so they must stay stable across
// releases: dashboards and the slow-query log key on them.
func OperatorName(op Operator) string {
	switch op.(type) {
	case *Scan:
		return "scan"
	case *ParallelScan:
		return "parallel_scan"
	case *IndexScan:
		return "index_scan"
	case *IndexRangeScan:
		return "index_range_scan"
	case *ValuesOp:
		return "values"
	case *Filter:
		return "filter"
	case *RowFilter:
		return "summary_filter"
	case *Project:
		return "project"
	case *Limit:
		return "limit"
	case *HashJoin:
		return "hash_join"
	case *NestedLoopJoin:
		return "nested_loop_join"
	case *GroupAggregate:
		return "group_aggregate"
	case *Distinct:
		return "distinct"
	case *Sort:
		return "sort"
	case *RowSort:
		return "summary_sort"
	case *Trace:
		return "trace"
	default:
		return "unknown"
	}
}

// WalkStats visits every instrumented operator in the plan rooted at op,
// depth-first, reporting each one's metric label and runtime counters.
// Engine code uses it at statement close to fold per-operator stats into
// the cumulative per-operator-type metric families.
func WalkStats(op Operator, fn func(name string, st OpStats)) {
	if op == nil {
		return
	}
	if in, ok := op.(Instrumented); ok {
		fn(OperatorName(op), in.Stats())
	}
	if d, ok := op.(Described); ok {
		for _, child := range d.Children() {
			WalkStats(child, fn)
		}
	}
}

// Timed reports whether per-operator wall-time collection is enabled.
func (ec *ExecContext) Timed() bool { return ec != nil && ec.timed }

// LikeMatch reports whether s matches the SQL LIKE pattern (% matches any
// run of characters, _ any single rune). Exported for SHOW METRICS LIKE,
// which reuses the expression evaluator's matcher against metric names.
func LikeMatch(s, pattern string) bool { return likeMatch(s, pattern) }
