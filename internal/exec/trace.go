package exec

import (
	"sync"

	"insightnotes/internal/types"
)

// TraceEntry records one intermediate row observed at a pipeline stage —
// the data tuple together with the rendered summary objects attached to it
// at that point. This powers the demonstration's "under-the-hood execution"
// view (Figure 5): visualizing how annotation summaries transform at every
// operator of the query tree.
type TraceEntry struct {
	Stage   string
	Tuple   types.Tuple
	Summary string // rendered envelope; empty when the row carries none
}

// TraceSink accumulates trace entries from the operators of one query.
type TraceSink struct {
	mu      sync.Mutex
	entries []TraceEntry
}

// Add appends one entry.
func (s *TraceSink) Add(e TraceEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, e)
}

// Entries returns the accumulated entries in observation order.
func (s *TraceSink) Entries() []TraceEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TraceEntry(nil), s.entries...)
}

// Trace is a transparent operator that logs every row passing a pipeline
// stage into a sink.
type Trace struct {
	child Operator
	stage string
	sink  *TraceSink
}

// NewTrace wraps child, logging rows under the given stage label.
func NewTrace(child Operator, stage string, sink *TraceSink) *Trace {
	return &Trace{child: child, stage: stage, sink: sink}
}

// Schema implements Operator.
func (t *Trace) Schema() types.Schema { return t.child.Schema() }

// Open implements Operator.
func (t *Trace) Open() error { return t.child.Open() }

// Next implements Operator.
func (t *Trace) Next() (*Row, error) {
	row, err := t.child.Next()
	if err != nil || row == nil {
		return row, err
	}
	entry := TraceEntry{Stage: t.stage, Tuple: row.Tuple.Clone()}
	if row.Env != nil && !row.Env.IsEmpty() {
		entry.Summary = row.Env.Render()
	}
	t.sink.Add(entry)
	return row, nil
}

// Close implements Operator.
func (t *Trace) Close() error { return t.child.Close() }
