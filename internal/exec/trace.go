package exec

import (
	"insightnotes/internal/types"
)

// TraceEntry records one intermediate row observed at a pipeline stage —
// the data tuple together with the rendered summary objects attached to it
// at that point. This powers the demonstration's "under-the-hood execution"
// view (Figure 5): visualizing how annotation summaries transform at every
// operator of the query tree.
type TraceEntry struct {
	Stage   string
	Tuple   types.Tuple
	Summary string // rendered envelope; empty when the row carries none
}

// TraceSink accumulates trace entries from the operators of one query. It
// is owned by the statement's ExecContext: one sink per statement, written
// from the single goroutine executing that statement, so no locking is
// needed and concurrent queries can never interleave each other's traces.
type TraceSink struct {
	entries []TraceEntry
}

// Add appends one entry.
func (s *TraceSink) Add(e TraceEntry) {
	s.entries = append(s.entries, e)
}

// Entries returns the accumulated entries in observation order.
func (s *TraceSink) Entries() []TraceEntry {
	return append([]TraceEntry(nil), s.entries...)
}

// Trace is a transparent operator that logs every row passing a pipeline
// stage into the statement's trace sink (carried by the ExecContext). When
// the executing statement has no sink attached, rows pass through
// untouched.
type Trace struct {
	instr
	child Operator
	stage string
}

// NewTrace wraps child, logging rows under the given stage label.
func NewTrace(child Operator, stage string) *Trace {
	return &Trace{child: child, stage: stage}
}

// Schema implements Operator.
func (t *Trace) Schema() types.Schema { return t.child.Schema() }

// Open implements Operator.
func (t *Trace) Open(ec *ExecContext) error { return t.child.Open(ec) }

// NextBatch implements Operator.
func (t *Trace) NextBatch(ec *ExecContext) (*Batch, error) {
	b, err := t.child.NextBatch(ec)
	if err != nil || b == nil {
		return b, err
	}
	if ec != nil && ec.trace != nil {
		for _, row := range b.Rows {
			entry := TraceEntry{Stage: t.stage, Tuple: row.Tuple.Clone()}
			if row.Env != nil && !row.Env.IsEmpty() {
				entry.Summary = row.Env.Render()
			}
			ec.trace.Add(entry)
		}
	}
	return b, nil
}

// Close implements Operator.
func (t *Trace) Close() error { return t.child.Close() }
