package exec

import (
	"insightnotes/internal/annotation"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// Row is one pipeline element: a data tuple plus its annotation-summary
// envelope. Env may be nil when the tuple carries no annotations.
type Row struct {
	Tuple types.Tuple
	Env   *summary.Envelope
}

// Batch is one unit of the vectorized pipeline: up to ExecContext.BatchSize
// rows handed between operators per NextBatch call. Batches are never
// empty — an operator with no more rows returns (nil, nil) instead.
type Batch struct {
	Rows []*Row
}

// Len is the number of rows in the batch (nil-tolerant).
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.Rows)
}

// Operator is a batch-at-a-time iterator (vectorized Volcano). NextBatch
// returns (nil, nil) when the stream is exhausted and never returns an
// empty batch. Implementations own their children: Open/Close cascade.
// Open and NextBatch receive the per-statement ExecContext, which carries
// cancellation, the batch size, runtime statistics, and the optional trace
// sink; a nil context is tolerated (tests, internal drivers).
type Operator interface {
	// Schema describes the tuples the operator produces.
	Schema() types.Schema
	// Open prepares the operator for iteration.
	Open(ec *ExecContext) error
	// NextBatch produces the next batch of rows, or (nil, nil) at end of
	// stream. Returned batches are owned by the caller; the producer must
	// not reuse the backing slice.
	NextBatch(ec *ExecContext) (*Batch, error)
	// Close releases resources.
	Close() error
}

// drain pulls every remaining batch of child, applying fn to each row in
// stream order — the shared inner loop of pipeline-breaking operators
// (sorts, grouping, join builds) and of the result collector.
func drain(ec *ExecContext, child Operator, fn func(*Row) error) error {
	for {
		b, err := child.NextBatch(ec)
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		for _, row := range b.Rows {
			if err := fn(row); err != nil {
				return err
			}
		}
	}
}

// sliceBatch emits the next at-most-n rows of a materialized row slice,
// advancing *pos — the shared NextBatch body of materializing operators.
func sliceBatch(rows []*Row, pos *int, n int) *Batch {
	if *pos >= len(rows) {
		return nil
	}
	end := *pos + n
	if end > len(rows) {
		end = len(rows)
	}
	out := rows[*pos:end:end]
	*pos = end
	return &Batch{Rows: out}
}

// ---- envelope helpers (nil-tolerant) ----

// envClone deep-copies an envelope; nil stays nil.
func envClone(e *summary.Envelope) *summary.Envelope {
	if e == nil {
		return nil
	}
	return e.Clone()
}

// envProject narrows an envelope to the kept input columns; empty results
// collapse to nil.
func envProject(e *summary.Envelope, keep []int) *summary.Envelope {
	if e == nil {
		return nil
	}
	e.Project(keep)
	if e.IsEmpty() {
		return nil
	}
	return e
}

// envRemap applies a generalized column remapping; empty results collapse
// to nil.
func envRemap(e *summary.Envelope, mapping []annotation.ColSet) *summary.Envelope {
	if e == nil {
		return nil
	}
	e.RemapColumns(mapping)
	if e.IsEmpty() {
		return nil
	}
	return e
}

// envMerge merges right into left (owned, mutated) for a join with the
// given left width, tolerating nils. Merge only reads right — objects it
// adopts are cloned inside the summary algebra — so callers may pass a
// shared right envelope (e.g. a hash-join build row matched by several
// probe rows) without a defensive copy.
func envMerge(left, right *summary.Envelope, leftWidth int) *summary.Envelope {
	if right == nil {
		return left
	}
	if left == nil {
		// Shift right coverage into the output shape via a merge into an
		// empty envelope.
		out := summary.NewEnvelope()
		out.Merge(right, leftWidth)
		return out
	}
	left.Merge(right, leftWidth)
	return left
}

// envCombine merges right into left for same-shape combination (grouping,
// distinct), tolerating nils.
func envCombine(left, right *summary.Envelope) *summary.Envelope {
	if right == nil {
		return left
	}
	if left == nil {
		return right
	}
	left.Combine(right)
	return left
}
