package exec

import (
	"insightnotes/internal/annotation"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// Row is one pipeline element: a data tuple plus its annotation-summary
// envelope. Env may be nil when the tuple carries no annotations.
type Row struct {
	Tuple types.Tuple
	Env   *summary.Envelope
}

// Operator is a Volcano-style iterator. Next returns (nil, nil) when the
// stream is exhausted. Implementations own their children: Open/Close
// cascade. Open and Next receive the per-statement ExecContext, which
// carries cancellation, runtime statistics, and the optional trace sink;
// a nil context is tolerated (tests, internal drivers).
type Operator interface {
	// Schema describes the tuples the operator produces.
	Schema() types.Schema
	// Open prepares the operator for iteration.
	Open(ec *ExecContext) error
	// Next produces the next row, or (nil, nil) at end of stream.
	Next(ec *ExecContext) (*Row, error)
	// Close releases resources.
	Close() error
}

// ---- envelope helpers (nil-tolerant) ----

// envClone deep-copies an envelope; nil stays nil.
func envClone(e *summary.Envelope) *summary.Envelope {
	if e == nil {
		return nil
	}
	return e.Clone()
}

// envProject narrows an envelope to the kept input columns; empty results
// collapse to nil.
func envProject(e *summary.Envelope, keep []int) *summary.Envelope {
	if e == nil {
		return nil
	}
	e.Project(keep)
	if e.IsEmpty() {
		return nil
	}
	return e
}

// envRemap applies a generalized column remapping; empty results collapse
// to nil.
func envRemap(e *summary.Envelope, mapping []annotation.ColSet) *summary.Envelope {
	if e == nil {
		return nil
	}
	e.RemapColumns(mapping)
	if e.IsEmpty() {
		return nil
	}
	return e
}

// envMerge merges right into left (owned, mutated) for a join with the
// given left width, tolerating nils. Merge only reads right — objects it
// adopts are cloned inside the summary algebra — so callers may pass a
// shared right envelope (e.g. a hash-join build row matched by several
// probe rows) without a defensive copy.
func envMerge(left, right *summary.Envelope, leftWidth int) *summary.Envelope {
	if right == nil {
		return left
	}
	if left == nil {
		// Shift right coverage into the output shape via a merge into an
		// empty envelope.
		out := summary.NewEnvelope()
		out.Merge(right, leftWidth)
		return out
	}
	left.Merge(right, leftWidth)
	return left
}

// envCombine merges right into left for same-shape combination (grouping,
// distinct), tolerating nils.
func envCombine(left, right *summary.Envelope) *summary.Envelope {
	if right == nil {
		return left
	}
	if left == nil {
		return right
	}
	left.Combine(right)
	return left
}
