package exec

import (
	"fmt"
	"strings"
	"time"
)

// Described is implemented by operators that can report their role and
// children for EXPLAIN output. All operators in this package implement it.
type Described interface {
	// Describe returns a one-line description of the operator.
	Describe() string
	// Children returns the operator's inputs, left to right.
	Children() []Operator
}

// Explain renders the operator tree rooted at op, one node per line with
// two-space indentation per depth.
func Explain(op Operator) string {
	var b strings.Builder
	explainInto(&b, op, 0)
	return strings.TrimRight(b.String(), "\n")
}

func explainInto(b *strings.Builder, op Operator, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if d, ok := op.(Described); ok {
		b.WriteString(d.Describe())
		b.WriteByte('\n')
		for _, child := range d.Children() {
			explainInto(b, child, depth+1)
		}
		return
	}
	fmt.Fprintf(b, "%T\n", op)
}

// ExplainAnalyze renders the operator tree rooted at op after execution,
// annotating each node with its runtime counters: rows produced, envelope
// merge and curate operations, and wall time spent inside the operator
// (inclusive of children; collected when the statement context enabled
// timing). This is the EXPLAIN ANALYZE rendering.
func ExplainAnalyze(op Operator) string {
	var b strings.Builder
	explainAnalyzeInto(&b, op, 0)
	return strings.TrimRight(b.String(), "\n")
}

func explainAnalyzeInto(b *strings.Builder, op Operator, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	d, described := op.(Described)
	if described {
		b.WriteString(d.Describe())
	} else {
		fmt.Fprintf(b, "%T", op)
	}
	if in, ok := op.(Instrumented); ok {
		st := in.Stats()
		fmt.Fprintf(b, "  (rows=%d batches=%d merges=%d curates=%d time=%s",
			st.Rows, st.Batches, st.Merges, st.Curates, st.Wall.Round(time.Microsecond))
		if st.Workers > 0 {
			fmt.Fprintf(b, " workers=%d morsels=%d", st.Workers, st.Morsels)
		}
		b.WriteString(")")
	}
	b.WriteByte('\n')
	if described {
		for _, child := range d.Children() {
			explainAnalyzeInto(b, child, depth+1)
		}
	}
}

// Describe implements Described.
func (s *Scan) Describe() string {
	return fmt.Sprintf("Scan %s AS %s %s%s", s.table.Name(), s.alias, s.schema, s.describeEst())
}

// Children implements Described.
func (s *Scan) Children() []Operator { return nil }

// Describe implements Described.
func (s *IndexScan) Describe() string {
	return fmt.Sprintf("IndexScan %s AS %s ON %s = %s%s",
		s.table.Name(), s.alias, s.col, s.val, s.describeEst())
}

// Children implements Described.
func (s *IndexScan) Children() []Operator { return nil }

// Describe implements Described.
func (v *ValuesOp) Describe() string { return fmt.Sprintf("Values (%d rows)", len(v.rows)) }

// Children implements Described.
func (v *ValuesOp) Children() []Operator { return nil }

// Describe implements Described.
func (f *Filter) Describe() string { return "Filter " + f.pred.String() }

// Children implements Described.
func (f *Filter) Children() []Operator { return []Operator{f.child} }

// Describe implements Described.
func (f *RowFilter) Describe() string { return "SummaryFilter " + f.pred.String() }

// Children implements Described.
func (f *RowFilter) Children() []Operator { return []Operator{f.child} }

// Describe implements Described.
func (p *Project) Describe() string {
	cols := make([]string, len(p.items))
	for i, it := range p.items {
		cols[i] = it.Expr.String()
	}
	return "Project+Curate [" + strings.Join(cols, ", ") + "]"
}

// Children implements Described.
func (p *Project) Children() []Operator { return []Operator{p.child} }

// Describe implements Described.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.n) }

// Children implements Described.
func (l *Limit) Children() []Operator { return []Operator{l.child} }

// Describe implements Described.
func (j *HashJoin) Describe() string {
	keys := make([]string, len(j.leftKeys))
	for i := range j.leftKeys {
		keys[i] = j.leftKeys[i].String() + " = " + j.rightKeys[i].String()
	}
	return "HashJoin+MergeSummaries ON " + strings.Join(keys, " AND ")
}

// Children implements Described.
func (j *HashJoin) Children() []Operator { return []Operator{j.left, j.right} }

// Describe implements Described.
func (j *NestedLoopJoin) Describe() string {
	if j.cond == nil {
		return "CrossJoin+MergeSummaries"
	}
	return "NestedLoopJoin+MergeSummaries ON " + j.cond.String()
}

// Children implements Described.
func (j *NestedLoopJoin) Children() []Operator { return []Operator{j.left, j.right} }

// Describe implements Described.
func (g *GroupAggregate) Describe() string {
	var parts []string
	for _, k := range g.keys {
		parts = append(parts, k.String())
	}
	var aggs []string
	for _, a := range g.aggs {
		if a.Arg != nil {
			aggs = append(aggs, a.Func+"("+a.Arg.String()+")")
		} else {
			aggs = append(aggs, a.Func+"(*)")
		}
	}
	return fmt.Sprintf("GroupAggregate+CombineSummaries BY [%s] COMPUTE [%s]",
		strings.Join(parts, ", "), strings.Join(aggs, ", "))
}

// Children implements Described.
func (g *GroupAggregate) Children() []Operator { return []Operator{g.child} }

// Describe implements Described.
func (d *Distinct) Describe() string { return "Distinct+CombineSummaries" }

// Children implements Described.
func (d *Distinct) Children() []Operator { return []Operator{d.child} }

// Describe implements Described.
func (s *Sort) Describe() string { return "Sort " + describeKeys(s.keys) }

// Children implements Described.
func (s *Sort) Children() []Operator { return []Operator{s.child} }

// Describe implements Described.
func (s *RowSort) Describe() string { return "SummarySort " + describeKeys(s.keys) }

// Children implements Described.
func (s *RowSort) Children() []Operator { return []Operator{s.child} }

func describeKeys(keys []SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Describe implements Described.
func (t *Trace) Describe() string { return "Trace " + t.stage }

// Children implements Described.
func (t *Trace) Children() []Operator { return []Operator{t.child} }
