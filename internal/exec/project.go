package exec

import (
	"insightnotes/internal/annotation"
	"insightnotes/internal/types"
)

// Filter passes rows whose predicate evaluates to true. Selection does not
// change the summary objects (Figure 2, step 2).
type Filter struct {
	child Operator
	pred  *Compiled
}

// NewFilter wraps child with a compiled predicate.
func NewFilter(child Operator, pred *Compiled) *Filter {
	return &Filter{child: child, pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.child.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.child.Open() }

// Next implements Operator.
func (f *Filter) Next() (*Row, error) {
	for {
		row, err := f.child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := f.pred.Eval(row.Tuple)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.child.Close() }

// ProjectItem is one output column of a projection: a compiled expression
// and its output column descriptor.
type ProjectItem struct {
	Expr *Compiled
	Col  types.Column
}

// Project computes output columns from input rows and applies the paper's
// project-on-summary-objects semantics: an annotation's new coverage is the
// set of output columns whose expressions reference at least one input
// column it covers; annotations covering no surviving column are
// eliminated from the summary objects (Figure 2, step 1).
type Project struct {
	child   Operator
	items   []ProjectItem
	schema  types.Schema
	mapping []annotation.ColSet // input ordinal → output coverage
}

// NewProject wraps child with projection items.
func NewProject(child Operator, items []ProjectItem) *Project {
	cols := make([]types.Column, len(items))
	for i, it := range items {
		cols[i] = it.Col
	}
	mapping := make([]annotation.ColSet, child.Schema().Len())
	for out, it := range items {
		for _, in := range it.Expr.Cols() {
			mapping[in] = mapping[in].Union(annotation.Col(out))
		}
	}
	return &Project{
		child:   child,
		items:   items,
		schema:  types.Schema{Columns: cols},
		mapping: mapping,
	}
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.child.Open() }

// Next implements Operator.
func (p *Project) Next() (*Row, error) {
	row, err := p.child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make(types.Tuple, len(p.items))
	for i, it := range p.items {
		v, err := it.Expr.Eval(row.Tuple)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return &Row{Tuple: out, Env: envRemap(row.Env, p.mapping)}, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.child.Close() }

// Limit passes through at most n rows.
type Limit struct {
	child Operator
	n     int
	seen  int
}

// NewLimit wraps child with a row cap.
func NewLimit(child Operator, n int) *Limit { return &Limit{child: child, n: n} }

// Schema implements Operator.
func (l *Limit) Schema() types.Schema { return l.child.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { l.seen = 0; return l.child.Open() }

// Next implements Operator.
func (l *Limit) Next() (*Row, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	row, err := l.child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.child.Close() }
