package exec

import (
	"insightnotes/internal/annotation"
	"insightnotes/internal/types"
)

// Filter passes rows whose predicate evaluates to true. Selection does not
// change the summary objects (Figure 2, step 2).
type Filter struct {
	instr
	child Operator
	pred  *Compiled
}

// NewFilter wraps child with a compiled predicate.
func NewFilter(child Operator, pred *Compiled) *Filter {
	return &Filter{child: child, pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.child.Schema() }

// Open implements Operator.
func (f *Filter) Open(ec *ExecContext) error { return f.child.Open(ec) }

// NextBatch implements Operator: child batches are filtered in place;
// fully-filtered batches are skipped so the operator never emits an empty
// batch.
func (f *Filter) NextBatch(ec *ExecContext) (*Batch, error) {
	start := f.begin(ec)
	for {
		b, err := f.child.NextBatch(ec)
		if err != nil || b == nil {
			f.produced(ec, start, nil)
			return nil, err
		}
		out := make([]*Row, 0, len(b.Rows))
		for _, row := range b.Rows {
			v, err := f.pred.Eval(row.Tuple)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				out = append(out, row)
			}
		}
		if len(out) == 0 {
			continue
		}
		res := &Batch{Rows: out}
		f.produced(ec, start, res)
		return res, nil
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.child.Close() }

// ProjectItem is one output column of a projection: a compiled expression
// and its output column descriptor.
type ProjectItem struct {
	Expr *Compiled
	Col  types.Column
}

// Project computes output columns from input rows and applies the paper's
// project-on-summary-objects semantics: an annotation's new coverage is the
// set of output columns whose expressions reference at least one input
// column it covers; annotations covering no surviving column are
// eliminated from the summary objects (Figure 2, step 1).
type Project struct {
	instr
	child   Operator
	items   []ProjectItem
	schema  types.Schema
	mapping []annotation.ColSet // input ordinal → output coverage
}

// NewProject wraps child with projection items.
func NewProject(child Operator, items []ProjectItem) *Project {
	cols := make([]types.Column, len(items))
	for i, it := range items {
		cols[i] = it.Col
	}
	mapping := make([]annotation.ColSet, child.Schema().Len())
	for out, it := range items {
		for _, in := range it.Expr.Cols() {
			mapping[in] = mapping[in].Union(annotation.Col(out))
		}
	}
	return &Project{
		child:   child,
		items:   items,
		schema:  types.Schema{Columns: cols},
		mapping: mapping,
	}
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open(ec *ExecContext) error { return p.child.Open(ec) }

// NextBatch implements Operator.
func (p *Project) NextBatch(ec *ExecContext) (*Batch, error) {
	start := p.begin(ec)
	b, err := p.child.NextBatch(ec)
	if err != nil || b == nil {
		p.produced(ec, start, nil)
		return nil, err
	}
	out := make([]*Row, len(b.Rows))
	for ri, row := range b.Rows {
		tu, err := p.projectRow(ec, row)
		if err != nil {
			return nil, err
		}
		out[ri] = tu
	}
	res := &Batch{Rows: out}
	p.produced(ec, start, res)
	return res, nil
}

// projectRow computes one output row: the projected tuple plus the curated
// (coverage-remapped) envelope.
func (p *Project) projectRow(ec *ExecContext, row *Row) (*Row, error) {
	out := make(types.Tuple, len(p.items))
	for i, it := range p.items {
		v, err := it.Expr.Eval(row.Tuple)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	if row.Env != nil {
		p.curated(ec)
	}
	return &Row{Tuple: out, Env: envRemap(row.Env, p.mapping)}, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.child.Close() }

// Limit passes through at most n rows.
type Limit struct {
	instr
	child Operator
	n     int
	seen  int
}

// NewLimit wraps child with a row cap.
func NewLimit(child Operator, n int) *Limit { return &Limit{child: child, n: n} }

// Schema implements Operator.
func (l *Limit) Schema() types.Schema { return l.child.Schema() }

// Open implements Operator.
func (l *Limit) Open(ec *ExecContext) error { l.seen = 0; return l.child.Open(ec) }

// NextBatch implements Operator: the batch holding the n-th row is
// truncated; later batches are never pulled.
func (l *Limit) NextBatch(ec *ExecContext) (*Batch, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	start := l.begin(ec)
	b, err := l.child.NextBatch(ec)
	if err != nil || b == nil {
		l.produced(ec, start, nil)
		return nil, err
	}
	if rest := l.n - l.seen; len(b.Rows) > rest {
		b.Rows = b.Rows[:rest]
	}
	l.seen += len(b.Rows)
	l.produced(ec, start, b)
	return b, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.child.Close() }
