package exec

import (
	"insightnotes/internal/annotation"
	"insightnotes/internal/types"
)

// Filter passes rows whose predicate evaluates to true. Selection does not
// change the summary objects (Figure 2, step 2).
type Filter struct {
	instr
	child Operator
	pred  *Compiled
}

// NewFilter wraps child with a compiled predicate.
func NewFilter(child Operator, pred *Compiled) *Filter {
	return &Filter{child: child, pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.child.Schema() }

// Open implements Operator.
func (f *Filter) Open(ec *ExecContext) error { return f.child.Open(ec) }

// Next implements Operator.
func (f *Filter) Next(ec *ExecContext) (*Row, error) {
	start := f.begin(ec)
	for {
		row, err := f.child.Next(ec)
		if err != nil || row == nil {
			f.produced(ec, start, nil)
			return nil, err
		}
		v, err := f.pred.Eval(row.Tuple)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			f.produced(ec, start, row)
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.child.Close() }

// ProjectItem is one output column of a projection: a compiled expression
// and its output column descriptor.
type ProjectItem struct {
	Expr *Compiled
	Col  types.Column
}

// Project computes output columns from input rows and applies the paper's
// project-on-summary-objects semantics: an annotation's new coverage is the
// set of output columns whose expressions reference at least one input
// column it covers; annotations covering no surviving column are
// eliminated from the summary objects (Figure 2, step 1).
type Project struct {
	instr
	child   Operator
	items   []ProjectItem
	schema  types.Schema
	mapping []annotation.ColSet // input ordinal → output coverage
}

// NewProject wraps child with projection items.
func NewProject(child Operator, items []ProjectItem) *Project {
	cols := make([]types.Column, len(items))
	for i, it := range items {
		cols[i] = it.Col
	}
	mapping := make([]annotation.ColSet, child.Schema().Len())
	for out, it := range items {
		for _, in := range it.Expr.Cols() {
			mapping[in] = mapping[in].Union(annotation.Col(out))
		}
	}
	return &Project{
		child:   child,
		items:   items,
		schema:  types.Schema{Columns: cols},
		mapping: mapping,
	}
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open(ec *ExecContext) error { return p.child.Open(ec) }

// Next implements Operator.
func (p *Project) Next(ec *ExecContext) (*Row, error) {
	start := p.begin(ec)
	row, err := p.child.Next(ec)
	if err != nil || row == nil {
		p.produced(ec, start, nil)
		return nil, err
	}
	out := make(types.Tuple, len(p.items))
	for i, it := range p.items {
		v, err := it.Expr.Eval(row.Tuple)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	if row.Env != nil {
		p.curated(ec)
	}
	res := &Row{Tuple: out, Env: envRemap(row.Env, p.mapping)}
	p.produced(ec, start, res)
	return res, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.child.Close() }

// Limit passes through at most n rows.
type Limit struct {
	instr
	child Operator
	n     int
	seen  int
}

// NewLimit wraps child with a row cap.
func NewLimit(child Operator, n int) *Limit { return &Limit{child: child, n: n} }

// Schema implements Operator.
func (l *Limit) Schema() types.Schema { return l.child.Schema() }

// Open implements Operator.
func (l *Limit) Open(ec *ExecContext) error { l.seen = 0; return l.child.Open(ec) }

// Next implements Operator.
func (l *Limit) Next(ec *ExecContext) (*Row, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	start := l.begin(ec)
	row, err := l.child.Next(ec)
	if err != nil || row == nil {
		l.produced(ec, start, nil)
		return nil, err
	}
	l.seen++
	l.produced(ec, start, row)
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.child.Close() }
