package exec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"insightnotes/internal/annotation"
	"insightnotes/internal/catalog"
	"insightnotes/internal/summary"
	"insightnotes/internal/types"
)

// ParallelScan is the morsel-driven parallel table scan (Leis et al.): the
// snapshotted table is partitioned into fixed-size morsels claimed by a
// pool of worker goroutines. Each worker runs the whole per-tuple summary
// path — envelope fetch/clone from the store, the absorbed data predicate,
// and the absorbed projection with its envelope curation — so the
// expensive propagation work parallelizes, not just the tuple copy.
//
// NextBatch is an ordered gather: morsel results are emitted strictly in
// morsel-index order, regardless of worker completion order. That makes
// the output byte-identical to the serial plan at every worker count,
// which preserves the stability contract of any Sort above (equal keys
// keep input order) and lets the equivalence property test compare
// results verbatim.
type ParallelScan struct {
	instr
	estRows
	table   *catalog.Table
	alias   string
	envs    EnvelopeSource
	schema  types.Schema // scan schema (pre-projection)
	pred    *Compiled    // absorbed Filter predicate; nil = none
	items   []ProjectItem
	mapping []annotation.ColSet // input ordinal → output coverage
	out     types.Schema        // output schema (post-projection)
	workers int
	morsel  int

	// snapshot + runtime state, rebuilt by Open
	rows    []types.RowID
	tups    []types.Tuple
	morsels []morselResult
	claim   atomic.Int64
	stop    atomic.Bool
	wg      sync.WaitGroup

	mu        sync.Mutex
	cond      *sync.Cond
	failure   error
	workerSts []OpStats
	forks     []*ExecContext

	gather  int // next morsel index to emit
	emitPos int // row offset within the gathered morsel
	folded  bool
}

// morselResult is one morsel's processed rows; done flips under ps.mu when
// the owning worker finishes it.
type morselResult struct {
	rows []*Row
	done bool
}

// NewParallelScan creates a morsel-parallel scan of tbl under alias with
// the given worker count (values below 2 are illegal — the planner keeps
// the serial Scan for those). pred, when non-nil, is the absorbed data
// predicate compiled against the scan schema; items, when non-empty, is
// the absorbed projection.
func NewParallelScan(tbl *catalog.Table, alias string, envs EnvelopeSource,
	pred *Compiled, items []ProjectItem, workers int) *ParallelScan {
	if alias == "" {
		alias = tbl.Name()
	}
	schema := tbl.Schema().WithTable(alias)
	ps := &ParallelScan{
		table:   tbl,
		alias:   alias,
		envs:    envs,
		schema:  schema,
		pred:    pred,
		out:     schema,
		workers: workers,
		morsel:  DefaultMorselSize,
	}
	ps.AbsorbProject(items)
	ps.cond = sync.NewCond(&ps.mu)
	return ps
}

// AbsorbProject pushes a projection (compiled against the scan schema) into
// the worker pool: workers evaluate the item expressions and curate each
// tuple's envelope down to the projected coverage, instead of a Project
// operator doing that serially above the scan. The planner calls it before
// Open; it replaces any previously absorbed projection.
func (ps *ParallelScan) AbsorbProject(items []ProjectItem) {
	ps.items = items
	ps.out = ps.schema
	ps.mapping = nil
	if len(items) == 0 {
		return
	}
	cols := make([]types.Column, len(items))
	for i, it := range items {
		cols[i] = it.Col
	}
	ps.out = types.Schema{Columns: cols}
	ps.mapping = make([]annotation.ColSet, ps.schema.Len())
	for outIdx, it := range items {
		for _, in := range it.Expr.Cols() {
			ps.mapping[in] = ps.mapping[in].Union(annotation.Col(outIdx))
		}
	}
}

// Schema implements Operator.
func (ps *ParallelScan) Schema() types.Schema { return ps.out }

// Open implements Operator: it snapshots the table's rows (serially, so
// concurrent DML does not disturb the iteration), partitions them into
// morsels, and starts the worker pool.
func (ps *ParallelScan) Open(ec *ExecContext) error {
	if err := ec.Err(); err != nil {
		return err
	}
	ps.rows = ps.rows[:0]
	ps.tups = ps.tups[:0]
	err := ps.table.Scan(func(row types.RowID, tu types.Tuple) bool {
		ps.rows = append(ps.rows, row)
		ps.tups = append(ps.tups, tu.Clone())
		return true
	})
	if err != nil {
		return err
	}
	n := (len(ps.rows) + ps.morsel - 1) / ps.morsel
	ps.morsels = make([]morselResult, n)
	ps.claim.Store(0)
	ps.stop.Store(false)
	ps.failure = nil
	ps.gather = 0
	ps.emitPos = 0
	ps.folded = false
	workers := ps.workers
	if workers > n && n > 0 {
		workers = n
	}
	ps.workerSts = make([]OpStats, workers)
	ps.forks = make([]*ExecContext, workers)
	for w := 0; w < workers; w++ {
		ps.forks[w] = ec.forkWorker()
		ps.wg.Add(1)
		go ps.worker(w)
	}
	return nil
}

// worker claims morsels off the shared counter until the scan is drained,
// stopped, or failed. Results are published under ps.mu and signalled to
// the gatherer.
func (ps *ParallelScan) worker(w int) {
	defer ps.wg.Done()
	wec := ps.forks[w]
	for !ps.stop.Load() {
		i := int(ps.claim.Add(1)) - 1
		if i >= len(ps.morsels) {
			return
		}
		rows, err := ps.processMorsel(wec, w, i)
		ps.mu.Lock()
		if err != nil && ps.failure == nil {
			ps.failure = err
		}
		ps.morsels[i] = morselResult{rows: rows, done: true}
		ps.cond.Broadcast()
		ps.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// processMorsel runs the summary-propagation path over one morsel:
// envelope fetch, predicate, projection + curation. Cancellation is
// polled once per morsel.
func (ps *ParallelScan) processMorsel(wec *ExecContext, w, i int) ([]*Row, error) {
	if err := wec.checkCancel(); err != nil {
		return nil, err
	}
	start := ps.beginWorker(wec)
	lo := i * ps.morsel
	hi := lo + ps.morsel
	if hi > len(ps.rows) {
		hi = len(ps.rows)
	}
	st := &ps.workerSts[w]
	out := make([]*Row, 0, hi-lo)
	for k := lo; k < hi; k++ {
		var env *summary.Envelope
		if ps.envs != nil {
			env = ps.envs.EnvelopeFor(ps.table.Name(), ps.rows[k])
		}
		row := &Row{Tuple: ps.tups[k], Env: env}
		if ps.pred != nil {
			v, err := ps.pred.Eval(row.Tuple)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		if len(ps.items) > 0 {
			tu := make(types.Tuple, len(ps.items))
			for ii, it := range ps.items {
				v, err := it.Expr.Eval(row.Tuple)
				if err != nil {
					return nil, err
				}
				tu[ii] = v
			}
			if row.Env != nil {
				st.Curates++
				if wec != nil {
					wec.totals.Curates++
				}
			}
			row = &Row{Tuple: tu, Env: envRemap(row.Env, ps.mapping)}
		}
		out = append(out, row)
	}
	st.Morsels++
	ps.endWorker(wec, st, start)
	return out, nil
}

// NextBatch implements Operator: the ordered gather. It blocks until the
// next-in-order morsel is done, then emits its rows in batch-size slices.
func (ps *ParallelScan) NextBatch(ec *ExecContext) (*Batch, error) {
	start := ps.begin(ec)
	n := ec.BatchSize()
	ps.mu.Lock()
	for {
		if ps.failure != nil {
			err := ps.failure
			ps.mu.Unlock()
			return nil, err
		}
		if ps.gather >= len(ps.morsels) {
			ps.mu.Unlock()
			ps.finish(ec)
			return nil, nil
		}
		m := &ps.morsels[ps.gather]
		if !m.done {
			ps.cond.Wait()
			continue
		}
		if ps.emitPos >= len(m.rows) {
			m.rows = nil // emitted; release the morsel's memory early
			ps.gather++
			ps.emitPos = 0
			continue
		}
		b := sliceBatch(m.rows, &ps.emitPos, n)
		ps.mu.Unlock()
		ps.produced(ec, start, b)
		return b, nil
	}
}

// finish stops the pool and folds per-worker counters into the operator's
// stats and the statement totals — rows summed by the gather-side
// produced(), curation summed across workers, wall time reported as the
// busiest worker's (the critical path), plus worker and morsel counts.
// Idempotent; called at end of stream and again from Close.
func (ps *ParallelScan) finish(ec *ExecContext) {
	ps.stop.Store(true)
	ps.mu.Lock()
	ps.cond.Broadcast()
	ps.mu.Unlock()
	ps.wg.Wait()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.folded {
		return
	}
	ps.folded = true
	ps.st.Workers = len(ps.workerSts)
	for w := range ps.workerSts {
		st := &ps.workerSts[w]
		ps.st.Curates += st.Curates
		ps.st.Morsels += st.Morsels
		if st.Wall > ps.st.Wall {
			ps.st.Wall = st.Wall
		}
		if ec != nil {
			ec.foldWorker(ps.forks[w])
		}
	}
}

// beginWorker/endWorker meter one morsel's processing time into the
// worker's private stats when timing is enabled.
func (ps *ParallelScan) beginWorker(wec *ExecContext) time.Time {
	if wec == nil || !wec.timed {
		return time.Time{}
	}
	return time.Now()
}

func (ps *ParallelScan) endWorker(wec *ExecContext, st *OpStats, start time.Time) {
	if wec == nil || !wec.timed {
		return
	}
	st.Wall += time.Since(start)
}

// Close implements Operator.
func (ps *ParallelScan) Close() error {
	ps.finish(nil)
	ps.rows = nil
	ps.tups = nil
	ps.morsels = nil
	return nil
}

// Describe implements Described.
func (ps *ParallelScan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ParallelScan %s AS %s (workers=%d morsel=%d)%s",
		ps.table.Name(), ps.alias, ps.workers, ps.morsel, ps.describeEst())
	if ps.pred != nil {
		b.WriteString(" Filter " + ps.pred.String())
	}
	if len(ps.items) > 0 {
		cols := make([]string, len(ps.items))
		for i, it := range ps.items {
			cols[i] = it.Expr.String()
		}
		b.WriteString(" Project+Curate [" + strings.Join(cols, ", ") + "]")
	}
	return b.String()
}

// Children implements Described.
func (ps *ParallelScan) Children() []Operator { return nil }
