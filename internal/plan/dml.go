// Access-path selection for mutating statements. UPDATE and DELETE match
// rows outside the full query planner (they need row ids, not batches),
// but their scan-vs-index decision reuses the same cost model and
// predicate extraction as SELECT so the two paths cannot drift apart.
package plan

import (
	"insightnotes/internal/catalog"
	"insightnotes/internal/exec"
	"insightnotes/internal/sql"
	"insightnotes/internal/types"
)

// DMLPath is the access path chosen for an UPDATE or DELETE row match.
// When Name is "full_scan" the caller scans the heap; otherwise it fetches
// candidate row ids through the named index column and re-evaluates the
// full predicate per candidate.
type DMLPath struct {
	// Name is the access-path family: "full_scan", "index_scan", or
	// "index_range_scan".
	Name string
	// Col is the unqualified indexed column (index paths only).
	Col string
	// Est is the dive-based estimate of matching rows (index paths only).
	Est int
	// CostSeq and CostIndex are the compared cost-model estimates; CostIndex
	// is zero when no index candidate was eligible.
	CostSeq   float64
	CostIndex float64
	// Equality candidates carry Val; range candidates carry the bounds.
	IsRange      bool
	Val          types.Value
	Lo, Hi       *types.Value
	LoInc, HiInc bool
}

// ChooseDMLPath picks the access path for a mutating statement's WHERE
// clause against tbl, using the same conjunct extraction, index-dive
// estimates, and cost constants as the query planner's chooseAccessPath.
// disableIndex forces the full scan (mirrors Options.DisableIndexScan).
func ChooseDMLPath(tbl *catalog.Table, where sql.Expr, disableIndex bool) DMLPath {
	st := tbl.Stats()
	seq := seqScanCost(st)
	path := DMLPath{Name: "full_scan", CostSeq: seq}
	if disableIndex || where == nil {
		return path
	}

	schema := tbl.Schema()
	limit := diveLimit(seq)
	var best *indexCandidate
	for _, e := range exec.SplitConjuncts(where) {
		if col, val, ok := constEquality(e, schema); ok {
			_, name := types.SplitQualified(col)
			est, capped, ok := tbl.EstimateIndexEquality(name, val, limit)
			if !ok || capped {
				continue
			}
			c := indexCandidate{expr: e, col: name, est: est, val: val}
			if best == nil || c.est < best.est {
				cc := c
				best = &cc
			}
			continue
		}
		if rng, ok := constRange(e, schema); ok {
			_, name := types.SplitQualified(rng.col)
			est, capped, ok := tbl.EstimateIndexRange(name, rng.lo, rng.hi, rng.loInc, rng.hiInc, limit)
			if !ok || capped {
				continue
			}
			c := indexCandidate{expr: e, col: name, est: est, isRange: true, rng: rng}
			if best == nil || c.est < best.est {
				cc := c
				best = &cc
			}
		}
	}
	if best == nil || indexCost(best.est) >= seq {
		if best != nil {
			path.CostIndex = indexCost(best.est)
		}
		return path
	}
	path.Col = best.col
	path.Est = best.est
	path.CostIndex = indexCost(best.est)
	if best.isRange {
		path.Name = "index_range_scan"
		path.IsRange = true
		path.Lo, path.Hi = best.rng.lo, best.rng.hi
		path.LoInc, path.HiInc = best.rng.loInc, best.rng.hiInc
	} else {
		path.Name = "index_scan"
		path.Val = best.val
	}
	return path
}
