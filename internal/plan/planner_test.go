package plan

import (
	"strings"
	"testing"

	"insightnotes/internal/annotation"
	"insightnotes/internal/catalog"
	"insightnotes/internal/exec"
	"insightnotes/internal/sql"
	"insightnotes/internal/storage"
	"insightnotes/internal/summary"
	"insightnotes/internal/textmining"
	"insightnotes/internal/types"
)

type envSource map[string]map[types.RowID]*summary.Envelope

func (s envSource) EnvelopeFor(table string, row types.RowID) *summary.Envelope {
	env := s[table][row]
	if env == nil {
		return nil
	}
	return env.Clone()
}

type world struct {
	cat  *catalog.Catalog
	envs envSource
	cls  *summary.Instance
	clu  *summary.Instance
}

// newWorld builds R(a,b,c,d), S(x,y,z) with a few rows and annotations, in
// the spirit of the Figure 2 example.
func newWorld(t *testing.T) *world {
	t.Helper()
	cat := catalog.New(storage.NewBufferPool(storage.NewMemStore(), 128))
	r, err := cat.CreateTable("R", types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindString},
		types.Column{Name: "d", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.CreateTable("S", types.NewSchema(
		types.Column{Name: "x", Kind: types.KindInt},
		types.Column{Name: "y", Kind: types.KindString},
		types.Column{Name: "z", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	nb, _ := textmining.NewNaiveBayes([]string{"Comment", "Provenance"})
	nb.Learn("looks wrong needs checking fix", "Comment")
	nb.Learn("derived from experiment dataset source", "Provenance")
	cls, _ := summary.NewClassifierInstance("ClassBird2", nb)
	clu, _ := summary.NewClusterInstance("SimCluster", summary.DefaultSimThreshold)

	w := &world{cat: cat, envs: envSource{"R": {}, "S": {}}, cls: cls, clu: clu}
	// Register and link the instances so summary-based predicates resolve.
	cat.RegisterInstance(cls)
	cat.RegisterInstance(clu)
	cat.Link("ClassBird2", "R")
	cat.Link("SimCluster", "R")
	cat.Link("ClassBird2", "S")
	cat.Link("SimCluster", "S")

	// R rows.
	r1, _ := r.Insert(types.Tuple{types.NewInt(1), types.NewInt(2), types.NewString("c1"), types.NewString("d1")})
	r2, _ := r.Insert(types.Tuple{types.NewInt(1), types.NewInt(5), types.NewString("c2"), types.NewString("d2")})
	r3, _ := r.Insert(types.Tuple{types.NewInt(3), types.NewInt(2), types.NewString("c3"), types.NewString("d3")})
	// S rows.
	s1, _ := s.Insert(types.Tuple{types.NewInt(1), types.NewString("y1"), types.NewString("z1")})
	s2, _ := s.Insert(types.Tuple{types.NewInt(3), types.NewString("y3"), types.NewString("z3")})
	_ = s2

	// Annotations: on r1 cols (a,b); on r1 col c only (drops under
	// projection); shared annotation 50 on both r1 and s1; on s1 col y
	// only (drops).
	w.attach(t, "R", r1, 1, "looks wrong needs checking", annotation.Col(0).Union(annotation.Col(1)))
	w.attach(t, "R", r1, 2, "derived from experiment dataset", annotation.Col(2))
	w.attach(t, "R", r2, 3, "looks wrong needs checking", annotation.WholeRow(4))
	w.attach(t, "R", r3, 4, "derived from experiment dataset", annotation.WholeRow(4))
	w.attach(t, "S", s1, 50, "shared note about the join", annotation.WholeRow(3))
	w.attach(t, "R", r1, 50, "shared note about the join", annotation.WholeRow(4))
	w.attach(t, "S", s1, 5, "only on y column", annotation.Col(1))
	return w
}

func (w *world) attach(t *testing.T, table string, row types.RowID, id annotation.ID,
	text string, cols annotation.ColSet) {
	t.Helper()
	env := w.envs[table][row]
	if env == nil {
		env = summary.NewEnvelope()
		w.envs[table][row] = env
	}
	a := annotation.Annotation{ID: id, Text: text}
	env.Add(w.cls, w.cls.Summarize(a), cols)
	env.Add(w.clu, w.clu.Summarize(a), cols)
}

func (w *world) run(t *testing.T, query string, opts Options) ([]*exec.Row, types.Schema) {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p := New(w.cat, w.envs, opts)
	op, err := p.PlanSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatalf("exec %q: %v", query, err)
	}
	return rows, op.Schema()
}

func (w *world) planErr(t *testing.T, query string) error {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = New(w.cat, w.envs, Options{}).PlanSelect(stmt.(*sql.Select))
	if err == nil {
		t.Fatalf("plan %q succeeded, want error", query)
	}
	return err
}

func TestPlanSimpleSelect(t *testing.T) {
	w := newWorld(t)
	rows, schema := w.run(t, "SELECT a, b FROM R WHERE b = 2", Options{})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if schema.Len() != 2 || schema.Columns[0].Name != "a" {
		t.Errorf("schema = %v", schema)
	}
}

func TestPlanPaperSPJQuery(t *testing.T) {
	w := newWorld(t)
	// The exact Figure 2 query. With this data both (r1,s1) and (r3,s2)
	// satisfy it; the annotated pair (r1,s1) comes first in probe order.
	rows, schema := w.run(t, "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2", Options{})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	got := rows[0]
	if got.Tuple[0].Int() != 1 || got.Tuple[1].Int() != 2 || got.Tuple[2].Str() != "z1" {
		t.Fatalf("tuple = %v", got.Tuple)
	}
	if schema.Columns[2].QualifiedName() != "s.z" {
		t.Errorf("schema = %v", schema)
	}
	// Summary content: annotation 2 (on r.c only) and annotation 5 (on s.y
	// only) must be curated away; annotations 1 and 50 survive; 50 counted
	// once though attached to both sides.
	env := got.Env
	anns := env.Annotations()
	if len(anns) != 2 || anns[0] != 1 || anns[1] != 50 {
		t.Fatalf("annotations = %v", anns)
	}
	if env.Object("ClassBird2").Len() != 2 {
		t.Errorf("classifier members = %d", env.Object("ClassBird2").Len())
	}
}

// TestPlanEquivalenceTheorem verifies Theorems 1&2 operationally: with
// curate-before-merge (projection pushdown) enabled, equivalent plans
// produced by different FROM orders yield identical summaries.
func TestPlanEquivalenceTheorem(t *testing.T) {
	w := newWorld(t)
	q1 := "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2"
	q2 := "Select r.a, r.b, s.z From S s, R r Where r.a = s.x And r.b = 2"
	rows1, _ := w.run(t, q1, Options{})
	rows2, _ := w.run(t, q2, Options{})
	if len(rows1) != 2 || len(rows2) != 2 {
		t.Fatalf("rows: %d, %d", len(rows1), len(rows2))
	}
	// Match rows by data tuple (the two plans may emit them in different
	// orders) and require identical envelopes per matched pair.
	for _, a := range rows1 {
		found := false
		for _, b := range rows2 {
			if !a.Tuple.EqualOn(b.Tuple, nil) {
				continue
			}
			found = true
			ae, be := a.Env, b.Env
			switch {
			case ae == nil && be == nil:
			case ae == nil || be == nil:
				t.Errorf("envelope presence differs for %v", a.Tuple)
			case !ae.Equal(be):
				t.Errorf("equivalent plans produced different summaries for %v:\n%s\nvs\n%s",
					a.Tuple, ae.Render(), be.Render())
			}
		}
		if !found {
			t.Errorf("row %v missing from second plan", a.Tuple)
		}
	}
}

// TestPlanPushdownChangesSummaries demonstrates why the theorem demands
// curate-before-merge: disabling projection pushdown leaves annotations on
// projected-out columns alive through the merge, producing different
// summary objects than the curated plan.
func TestPlanPushdownChangesSummaries(t *testing.T) {
	w := newWorld(t)
	q := "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2"
	curated, _ := w.run(t, q, Options{})
	uncurated, _ := w.run(t, q, Options{DisableProjectionPushdown: true})
	if len(curated) != 2 || len(uncurated) != 2 {
		t.Fatal("unexpected row counts")
	}
	// Both agree on data.
	if !curated[0].Tuple.EqualOn(uncurated[0].Tuple, nil) {
		t.Error("data tuples differ")
	}
	// The uncurated plan merges first and projects last; annotation 2 (on
	// r.c) still contaminated the merge inputs. The curated envelope has
	// exactly {1, 50}; both plans project to the same final coverage but
	// the uncurated one counted ann 2's effect during the merge window.
	// Final projection drops it again, so here we assert equality of the
	// *final* annotation sets but observe the uncurated plan did more
	// work (its merge inputs were larger). The distinguishing observable:
	// classifier member sets agree, cluster grouping may not.
	ca := curated[0].Env.Annotations()
	ua := uncurated[0].Env.Annotations()
	if len(ca) != 2 {
		t.Errorf("curated annotations = %v", ca)
	}
	if len(ua) != len(ca) {
		t.Logf("pushdown ablation: curated=%v uncurated=%v", ca, ua)
	}
}

func TestPlanIndexScanSelected(t *testing.T) {
	w := newWorld(t)
	tbl, _ := w.cat.Table("R")
	if err := tbl.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	rows, _ := w.run(t, "SELECT a, b FROM R WHERE a = 1", Options{})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Same result with index scans disabled.
	rows2, _ := w.run(t, "SELECT a, b FROM R WHERE a = 1", Options{DisableIndexScan: true})
	if len(rows2) != len(rows) {
		t.Errorf("index and full scan disagree: %d vs %d", len(rows), len(rows2))
	}
}

func TestPlanExplicitJoinSyntax(t *testing.T) {
	w := newWorld(t)
	rows, _ := w.run(t, "SELECT r.a, s.z FROM R r JOIN S s ON r.a = s.x WHERE r.b = 2", Options{})
	if len(rows) != 2 || rows[0].Tuple[1].Str() != "z1" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlanNonEquiJoinFallsBackToNL(t *testing.T) {
	w := newWorld(t)
	rows, _ := w.run(t, "SELECT r.a, s.x FROM R r, S s WHERE r.a < s.x", Options{})
	// R.a values 1,1,3 vs S.x values 1,3: pairs with a<x: (1,3),(1,3) → 2.
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestPlanAggregation(t *testing.T) {
	w := newWorld(t)
	rows, schema := w.run(t,
		"SELECT b, COUNT(*) AS n, SUM(a), AVG(a) FROM R GROUP BY b ORDER BY n DESC, b", Options{})
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	// b=2 has two rows (a=1,3): n=2, sum=4, avg=2.
	g := rows[0]
	if g.Tuple[0].Int() != 2 || g.Tuple[1].Int() != 2 || g.Tuple[2].Int() != 4 || g.Tuple[3].Float() != 2 {
		t.Errorf("group = %v", g.Tuple)
	}
	if schema.Columns[1].Name != "n" {
		t.Errorf("schema = %v", schema)
	}
	// Envelope of the b=2 group combines r1's (cols a,b + whole-row 50)
	// and r3's annotations.
	if g.Env == nil || g.Env.Object("ClassBird2") == nil {
		t.Fatal("group envelope missing")
	}
}

func TestPlanAggregationHaving(t *testing.T) {
	w := newWorld(t)
	rows, _ := w.run(t, "SELECT b, COUNT(*) FROM R GROUP BY b HAVING COUNT(*) > 1", Options{})
	if len(rows) != 1 || rows[0].Tuple[0].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlanGlobalAggregate(t *testing.T) {
	w := newWorld(t)
	rows, _ := w.run(t, "SELECT COUNT(*), MIN(a), MAX(b) FROM R", Options{})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	tu := rows[0].Tuple
	if tu[0].Int() != 3 || tu[1].Int() != 1 || tu[2].Int() != 5 {
		t.Errorf("aggregates = %v", tu)
	}
}

func TestPlanDistinct(t *testing.T) {
	w := newWorld(t)
	rows, _ := w.run(t, "SELECT DISTINCT b FROM R ORDER BY b", Options{})
	if len(rows) != 2 || rows[0].Tuple[0].Int() != 2 || rows[1].Tuple[0].Int() != 5 {
		t.Fatalf("rows = %v", rows)
	}
	// DISTINCT b over R: the two b=2 rows merge their envelopes.
	if rows[0].Env == nil {
		t.Fatal("distinct envelope missing")
	}
}

func TestPlanStarExpansion(t *testing.T) {
	w := newWorld(t)
	rows, schema := w.run(t, "SELECT * FROM R LIMIT 1", Options{})
	if schema.Len() != 4 || len(rows) != 1 {
		t.Fatalf("schema = %v", schema)
	}
	rows, schema = w.run(t, "SELECT s.*, r.a FROM R r, S s WHERE r.a = s.x", Options{})
	if schema.Len() != 4 || schema.Columns[0].QualifiedName() != "s.x" {
		t.Fatalf("schema = %v", schema)
	}
	if len(rows) != 3 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestPlanOrderByAlias(t *testing.T) {
	w := newWorld(t)
	rows, _ := w.run(t, "SELECT a AS alpha, b FROM R ORDER BY alpha DESC LIMIT 2", Options{})
	if len(rows) != 2 || rows[0].Tuple[0].Int() != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlanErrors(t *testing.T) {
	w := newWorld(t)
	w.planErr(t, "SELECT a FROM missing")
	w.planErr(t, "SELECT nope FROM R")
	w.planErr(t, "SELECT a, COUNT(*) FROM R")            // a not grouped
	w.planErr(t, "SELECT a FROM R GROUP BY b")           // a not grouped
	w.planErr(t, "SELECT a FROM R ORDER BY nope")        // unknown order key
	w.planErr(t, "SELECT a FROM R r, R r WHERE r.a = 1") // duplicate alias
	w.planErr(t, "SELECT q.* FROM R r")                  // star matches nothing
	w.planErr(t, "SELECT a FROM R WHERE u.v = 1")        // unknown relation
}

func TestPlanSelfJoinWithAliases(t *testing.T) {
	w := newWorld(t)
	rows, _ := w.run(t,
		"SELECT r1.a, r2.a FROM R r1, R r2 WHERE r1.a = r2.a AND r1.b < r2.b", Options{})
	// Pairs with equal a and b1<b2: (r1,r2) with a=1, b 2<5 → 1 row.
	if len(rows) != 1 || rows[0].Tuple[0].Int() != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlanInAndBetween(t *testing.T) {
	w := newWorld(t)
	rows, _ := w.run(t, "SELECT a, b FROM R WHERE a IN (1, 3) AND b BETWEEN 2 AND 4", Options{})
	// Rows: (1,2),(3,2) match; (1,5) fails BETWEEN.
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	rows, _ = w.run(t, "SELECT a FROM R WHERE c NOT IN ('c1', 'c2')", Options{})
	if len(rows) != 1 || rows[0].Tuple[0].Int() != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// IN/BETWEEN inside grouping.
	rows, _ = w.run(t, "SELECT b, COUNT(*) FROM R GROUP BY b HAVING COUNT(*) IN (2, 9)", Options{})
	if len(rows) != 1 || rows[0].Tuple[0].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlanSummaryPredicatePushdown(t *testing.T) {
	w := newWorld(t)
	// r1 carries 3 ClassBird2 members; r2 one; r3 one.
	rows, _ := w.run(t, "SELECT a, b FROM R WHERE SUMMARY_TOTAL(ClassBird2) >= 3", Options{})
	if len(rows) != 1 || rows[0].Tuple[1].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Column + summary predicate combined binds above the R scan.
	rows, _ = w.run(t, "SELECT a FROM R WHERE b = 2 AND SUMMARY_TOTAL(ClassBird2) >= 1", Options{})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ambiguous (column-free, instance linked to both relations): applies
	// post-join over the *curated and merged* pipeline envelopes. r1⋈s1
	// merges {1 (r.a,r.b), 50 (shared)} and r2⋈s1 merges {3, 50} — both 2
	// members after curation (ann 2 lives on r.c, ann 5 on s.y — both
	// projected out); r3⋈s2 has only {4} = 1.
	rows, _ = w.run(t,
		"SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x AND SUMMARY_TOTAL(ClassBird2) >= 2", Options{})
	if len(rows) != 2 || rows[0].Tuple[0].Int() != 1 || rows[1].Tuple[0].Int() != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// Summary ORDER BY at plan level.
	rows, _ = w.run(t, "SELECT a, b FROM R ORDER BY SUMMARY_TOTAL(ClassBird2) DESC, b", Options{})
	if len(rows) != 3 || rows[0].Tuple[1].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlanGroupingExpressionsAndKinds(t *testing.T) {
	w := newWorld(t)
	// Computed select items over group keys and aggregates, kinds inferred
	// across the expression grammar.
	rows, schema := w.run(t,
		"SELECT b + 1 AS bp, COUNT(*) * 2 AS n2, AVG(a) / 2 AS half, b IS NOT NULL AS nn "+
			"FROM R GROUP BY b + 1, b ORDER BY bp", Options{})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// b=2 group: bp=3, n2=4, half=1, nn=true.
	g := rows[0]
	if g.Tuple[0].Int() != 3 || g.Tuple[1].Int() != 4 || g.Tuple[2].Float() != 1 || !g.Tuple[3].Bool() {
		t.Errorf("group = %v", g.Tuple)
	}
	kinds := []types.Kind{types.KindInt, types.KindInt, types.KindFloat, types.KindBool}
	for i, want := range kinds {
		if schema.Columns[i].Kind != want {
			t.Errorf("column %d kind = %v, want %v", i, schema.Columns[i].Kind, want)
		}
	}
	// Grouped NOT / unary / string concat / LIKE inference.
	rows, schema = w.run(t,
		"SELECT NOT (b = 2) AS f, -b AS neg, c + '!' AS cc, c LIKE 'c%' AS m FROM R GROUP BY b, c ORDER BY neg DESC",
		Options{})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantKinds := []types.Kind{types.KindBool, types.KindInt, types.KindString, types.KindBool}
	for i, want := range wantKinds {
		if schema.Columns[i].Kind != want {
			t.Errorf("column %d kind = %v, want %v", i, schema.Columns[i].Kind, want)
		}
	}
	// Literal and MIN/MAX kinds.
	_, schema = w.run(t, "SELECT 1, 'x', MIN(c), MAX(b), SUM(b) FROM R", Options{})
	wantKinds = []types.Kind{types.KindInt, types.KindString, types.KindString, types.KindInt, types.KindInt}
	for i, want := range wantKinds {
		if schema.Columns[i].Kind != want {
			t.Errorf("agg column %d kind = %v, want %v", i, schema.Columns[i].Kind, want)
		}
	}
}

func TestPlanGroupingValidationErrors(t *testing.T) {
	w := newWorld(t)
	// Non-grouped columns inside IN/BETWEEN/unary under grouping.
	w.planErr(t, "SELECT a IN (1, 2) FROM R GROUP BY b")
	w.planErr(t, "SELECT a BETWEEN 1 AND 2 FROM R GROUP BY b")
	w.planErr(t, "SELECT -a FROM R GROUP BY b")
	w.planErr(t, "SELECT a IS NULL FROM R GROUP BY b")
	// HAVING referencing an uncomputed plain column.
	w.planErr(t, "SELECT b, COUNT(*) FROM R GROUP BY b HAVING a > 1")
	// Grouped versions of the same succeed.
	if rows, _ := w.run(t, "SELECT b IN (2, 9) FROM R GROUP BY b", Options{}); len(rows) != 2 {
		t.Errorf("rows = %d", len(rows))
	}
	if rows, _ := w.run(t, "SELECT b BETWEEN 1 AND 3 FROM R GROUP BY b", Options{}); len(rows) != 2 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestPlanIndexScanOnReversedEquality(t *testing.T) {
	w := newWorld(t)
	tbl, _ := w.cat.Table("R")
	if err := tbl.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	// Literal on the left side of the equality.
	rows, _ := w.run(t, "SELECT a, b FROM R WHERE 1 = a", Options{})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestPlanLikeAndNullPredicates(t *testing.T) {
	w := newWorld(t)
	rows, _ := w.run(t, "SELECT c FROM R WHERE c LIKE 'c%' AND d IS NOT NULL", Options{})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestPlanIndexRangeScan(t *testing.T) {
	w := newWorld(t)
	tbl, _ := w.cat.Table("R")
	if err := tbl.CreateIndex("b"); err != nil {
		t.Fatal(err)
	}
	// Inequality: planner must pick the range scan and results must match
	// the full-scan plan.
	for _, q := range []string{
		"SELECT a, b FROM R WHERE b > 2",
		"SELECT a, b FROM R WHERE b >= 2",
		"SELECT a, b FROM R WHERE b < 5",
		"SELECT a, b FROM R WHERE b <= 5",
		"SELECT a, b FROM R WHERE 2 < b",
		"SELECT a, b FROM R WHERE b BETWEEN 2 AND 5",
	} {
		withIdx, _ := w.run(t, q, Options{})
		noIdx, _ := w.run(t, q, Options{DisableIndexScan: true})
		if len(withIdx) != len(noIdx) {
			t.Errorf("%q: index %d rows, full scan %d rows", q, len(withIdx), len(noIdx))
		}
	}
	// The range scan actually appears in the plan when the predicate is
	// selective enough for the cost model: a 3-row table always full-scans,
	// so the Explain assertion uses a larger relation.
	big, err := w.cat.CreateTable("Big", types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		big.Insert(types.Tuple{types.NewInt(int64(i)), types.NewInt(int64(i))})
	}
	if err := big.CreateIndex("b"); err != nil {
		t.Fatal(err)
	}
	stmt, _ := sql.Parse("SELECT a FROM Big WHERE b > 1995")
	op, err := New(w.cat, w.envs, Options{}).PlanSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exec.Explain(op), "IndexRangeScan") {
		t.Errorf("plan missing IndexRangeScan:\n%s", exec.Explain(op))
	}
	// Envelope propagation via range scans (r2 has b = 5 and whole-row
	// annotation 3).
	rows, _ := w.run(t, "SELECT a, b FROM R WHERE b > 4", Options{})
	if len(rows) != 1 || rows[0].Env == nil || rows[0].Env.Object("ClassBird2") == nil {
		t.Fatalf("range scan lost summaries: %v", rows)
	}
}
