package plan

import (
	"fmt"
	"strings"

	"insightnotes/internal/exec"
	"insightnotes/internal/sql"
	"insightnotes/internal/types"
)

// collectAggregates finds the distinct aggregate calls (by canonical text)
// appearing in the select items and HAVING clause, in first-appearance
// order.
func collectAggregates(items []sql.SelectItem, having sql.Expr) []*sql.FuncCall {
	var out []*sql.FuncCall
	seen := map[string]bool{}
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.FuncCall:
			key := canonical(x)
			if !seen[key] {
				seen[key] = true
				out = append(out, x)
			}
		case *sql.BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *sql.UnaryExpr:
			walk(x.X)
		case *sql.IsNullExpr:
			walk(x.X)
		case *sql.InExpr:
			walk(x.X)
			for _, it := range x.List {
				walk(it)
			}
		case *sql.BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		}
	}
	for _, it := range items {
		walk(it.Expr)
	}
	if having != nil {
		walk(having)
	}
	return out
}

func canonical(e sql.Expr) string { return strings.ToLower(e.String()) }

// validateGrouping enforces that every non-aggregate select item appears in
// the GROUP BY list (textually).
func validateGrouping(items []sql.SelectItem, groupBy []sql.Expr) error {
	keys := map[string]bool{}
	for _, g := range groupBy {
		keys[canonical(g)] = true
	}
	var check func(e sql.Expr) error
	check = func(e sql.Expr) error {
		if keys[canonical(e)] {
			return nil
		}
		switch x := e.(type) {
		case *sql.Literal:
			return nil
		case *sql.FuncCall:
			return nil // aggregates are always fine
		case *sql.ColRef:
			return fmt.Errorf("plan: column %s must appear in GROUP BY or inside an aggregate", x.Name)
		case *sql.BinaryExpr:
			if err := check(x.L); err != nil {
				return err
			}
			return check(x.R)
		case *sql.UnaryExpr:
			return check(x.X)
		case *sql.IsNullExpr:
			return check(x.X)
		case *sql.InExpr:
			if err := check(x.X); err != nil {
				return err
			}
			for _, it := range x.List {
				if err := check(it); err != nil {
					return err
				}
			}
			return nil
		case *sql.BetweenExpr:
			for _, sub := range []sql.Expr{x.X, x.Lo, x.Hi} {
				if err := check(sub); err != nil {
					return err
				}
			}
			return nil
		}
		return nil
	}
	for _, it := range items {
		if err := check(it.Expr); err != nil {
			return err
		}
	}
	return nil
}

// rewriteForGroups replaces group-key expressions and aggregate calls in e
// with references to the internal aggregation schema columns.
func rewriteForGroups(e sql.Expr, groupNames map[string]string, aggNames map[string]string) (sql.Expr, error) {
	if name, ok := groupNames[canonical(e)]; ok {
		return &sql.ColRef{Name: name}, nil
	}
	switch x := e.(type) {
	case *sql.Literal:
		return x, nil
	case *sql.ColRef:
		return nil, fmt.Errorf("plan: %s referenced outside GROUP BY and aggregates", x.Name)
	case *sql.FuncCall:
		if name, ok := aggNames[canonical(x)]; ok {
			return &sql.ColRef{Name: name}, nil
		}
		return nil, fmt.Errorf("plan: aggregate %s not computed", x)
	case *sql.BinaryExpr:
		l, err := rewriteForGroups(x.L, groupNames, aggNames)
		if err != nil {
			return nil, err
		}
		r, err := rewriteForGroups(x.R, groupNames, aggNames)
		if err != nil {
			return nil, err
		}
		return &sql.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sql.UnaryExpr:
		in, err := rewriteForGroups(x.X, groupNames, aggNames)
		if err != nil {
			return nil, err
		}
		return &sql.UnaryExpr{Op: x.Op, X: in}, nil
	case *sql.IsNullExpr:
		in, err := rewriteForGroups(x.X, groupNames, aggNames)
		if err != nil {
			return nil, err
		}
		return &sql.IsNullExpr{X: in, Negate: x.Negate}, nil
	case *sql.InExpr:
		nx, err := rewriteForGroups(x.X, groupNames, aggNames)
		if err != nil {
			return nil, err
		}
		list := make([]sql.Expr, len(x.List))
		for i, it := range x.List {
			if list[i], err = rewriteForGroups(it, groupNames, aggNames); err != nil {
				return nil, err
			}
		}
		return &sql.InExpr{X: nx, List: list, Negate: x.Negate}, nil
	case *sql.BetweenExpr:
		nx, err := rewriteForGroups(x.X, groupNames, aggNames)
		if err != nil {
			return nil, err
		}
		lo, err := rewriteForGroups(x.Lo, groupNames, aggNames)
		if err != nil {
			return nil, err
		}
		hi, err := rewriteForGroups(x.Hi, groupNames, aggNames)
		if err != nil {
			return nil, err
		}
		return &sql.BetweenExpr{X: nx, Lo: lo, Hi: hi, Negate: x.Negate}, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression %T under grouping", e)
}

// planAggregate builds GroupAggregate → HAVING filter → final projection.
func (p *Planner) planAggregate(input exec.Operator, inSchema types.Schema,
	items []sql.SelectItem, s *sql.Select, aggs []*sql.FuncCall) (exec.Operator, error) {
	// Compile group keys.
	keys := make([]*exec.Compiled, len(s.GroupBy))
	keyCols := make([]types.Column, len(s.GroupBy))
	groupNames := map[string]string{}
	for i, g := range s.GroupBy {
		c, err := exec.Compile(g, inSchema)
		if err != nil {
			return nil, err
		}
		keys[i] = c
		name := fmt.Sprintf("#g%d", i)
		keyCols[i] = types.Column{Name: name, Kind: inferKind(g, inSchema)}
		groupNames[canonical(g)] = name
	}
	// Compile aggregate specs.
	specs := make([]exec.AggSpec, len(aggs))
	aggCols := make([]types.Column, len(aggs))
	aggNames := map[string]string{}
	for i, a := range aggs {
		spec := exec.AggSpec{Func: a.Name}
		if a.Arg != nil {
			c, err := exec.Compile(a.Arg, inSchema)
			if err != nil {
				return nil, err
			}
			spec.Arg = c
		}
		specs[i] = spec
		name := fmt.Sprintf("#a%d", i)
		aggCols[i] = types.Column{Name: name, Kind: aggKind(a, inSchema)}
		aggNames[canonical(a)] = name
	}
	op := exec.Operator(exec.NewGroupAggregate(input, keys, keyCols, specs, aggCols))
	internal := op.Schema()

	if s.Having != nil {
		rewritten, err := rewriteForGroups(s.Having, groupNames, aggNames)
		if err != nil {
			return nil, fmt.Errorf("plan: HAVING: %w", err)
		}
		c, err := exec.Compile(rewritten, internal)
		if err != nil {
			return nil, err
		}
		op = exec.NewFilter(op, c)
	}
	// Final projection from the internal schema to the select items.
	projItems := make([]exec.ProjectItem, len(items))
	for i, it := range items {
		rewritten, err := rewriteForGroups(it.Expr, groupNames, aggNames)
		if err != nil {
			return nil, err
		}
		c, err := exec.Compile(rewritten, internal)
		if err != nil {
			return nil, err
		}
		tbl, name := exec.ColumnLabel(it)
		projItems[i] = exec.ProjectItem{
			Expr: c,
			Col:  types.Column{Table: tbl, Name: name, Kind: inferKind(it.Expr, inSchema)},
		}
	}
	return exec.NewProject(op, projItems), nil
}

// planProjection builds the final projection for non-aggregate queries.
func (p *Planner) planProjection(input exec.Operator, inSchema types.Schema,
	items []sql.SelectItem) (exec.Operator, error) {
	projItems := make([]exec.ProjectItem, len(items))
	for i, it := range items {
		c, err := exec.Compile(it.Expr, input.Schema())
		if err != nil {
			return nil, err
		}
		tbl, name := exec.ColumnLabel(it)
		projItems[i] = exec.ProjectItem{
			Expr: c,
			Col:  types.Column{Table: tbl, Name: name, Kind: inferKind(it.Expr, input.Schema())},
		}
	}
	return exec.NewProject(input, projItems), nil
}

// inferKind derives a static result kind for display purposes. It is a
// best-effort inference; runtime values govern actual behaviour.
func inferKind(e sql.Expr, schema types.Schema) types.Kind {
	switch x := e.(type) {
	case *sql.Literal:
		return x.Val.Kind()
	case *sql.ColRef:
		if ix, err := schema.ColumnIndex(x.Name); err == nil {
			return schema.Columns[ix].Kind
		}
		return types.KindNull
	case *sql.FuncCall:
		return aggKind(x, schema)
	case *sql.UnaryExpr:
		if x.Op == "NOT" {
			return types.KindBool
		}
		return inferKind(x.X, schema)
	case *sql.IsNullExpr:
		return types.KindBool
	case *sql.InExpr, *sql.BetweenExpr:
		return types.KindBool
	case *sql.BinaryExpr:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE":
			return types.KindBool
		case "/":
			return types.KindFloat
		default:
			lk := inferKind(x.L, schema)
			rk := inferKind(x.R, schema)
			if lk == types.KindString && rk == types.KindString {
				return types.KindString
			}
			if lk == types.KindFloat || rk == types.KindFloat {
				return types.KindFloat
			}
			return types.KindInt
		}
	}
	return types.KindNull
}

func aggKind(a *sql.FuncCall, schema types.Schema) types.Kind {
	switch a.Name {
	case "COUNT":
		return types.KindInt
	case "AVG":
		return types.KindFloat
	default: // SUM, MIN, MAX follow the argument
		if a.Arg != nil {
			return inferKind(a.Arg, schema)
		}
		return types.KindFloat
	}
}
