// Plan cache. Repeated statements — the prepared-statement workload —
// pay lexing, parsing, and cost-based access-path selection on every
// execution even though nothing about the statement changed. The cache
// keys on normalized SQL text and stores the immutable parsed template
// plus a PathMemo of the planner's access-path decisions, so a hit skips
// both the front end and the B+tree index dives of cost estimation.
// Operator trees are NOT cached: they are stateful per execution and
// embed bound parameter values, so each EXECUTE still instantiates its
// own plan from the shared template.
//
// Staleness: a memoized access path is only as good as the catalog it
// was chosen against, so the engine drops the whole cache on DDL and on
// index create/drop (see DB.invalidatePlanCache). Within a statement's
// lifetime the memo is append-only and safe for concurrent planners.
package plan

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"insightnotes/internal/sql"
)

// DefaultCacheSize bounds the plan cache when the engine config leaves
// it unset.
const DefaultCacheSize = 256

// CachedPlan is one plan-cache entry: the parsed statement template
// (immutable — EXECUTE binds parameters into a clone, never in place),
// its placeholder count, and the memoized planner decisions.
type CachedPlan struct {
	Stmt      sql.Statement
	NumParams int
	Memo      *PathMemo
}

// CacheStats is a point-in-time snapshot of the cache's counters, the
// source for the insightnotes_plancache_* metrics.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Cache is a bounded LRU of CachedPlans keyed on normalized SQL.
// Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recent; values are *cacheNode
	entries map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheNode struct {
	key  string
	plan *CachedPlan
}

// NewCache builds a cache bounded to capacity entries (DefaultCacheSize
// when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached plan for key, counting a hit or miss.
func (c *Cache) Get(key string) (*CachedPlan, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheNode).plan, true
}

// Contains reports whether key is cached without counting a hit or miss
// (and without refreshing its recency).
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	return ok
}

// Put inserts (or refreshes) the plan under key, evicting the least
// recently used entry past capacity.
func (c *Cache) Put(key string, p *CachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheNode).plan = p
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheNode{key: key, plan: p})
	for c.lru.Len() > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*cacheNode).key)
		c.evictions.Add(1)
	}
}

// Invalidate drops every entry. Called on DDL and index create/drop:
// cached templates may name dropped objects and memoized access paths
// may reference created/dropped indexes, so the whole cache goes — the
// next execution of each statement re-parses and re-costs honestly.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
	c.mu.Unlock()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// NormalizeSQL canonicalizes statement text for cache keying: whitespace
// runs (spaces, tabs, newlines) collapse to one space, leading/trailing
// whitespace and trailing semicolons are trimmed. Case is preserved —
// string literals are case-significant, and over-normalizing risks
// aliasing distinct statements.
func NormalizeSQL(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			space = b.Len() > 0
			continue
		}
		if space {
			b.WriteByte(' ')
			space = false
		}
		b.WriteByte(c)
	}
	out := b.String()
	for strings.HasSuffix(out, ";") {
		out = strings.TrimRight(strings.TrimSuffix(out, ";"), " ")
	}
	return out
}

// ---- access-path memoization ----

// pathChoice records one relation's chosen access path. For index paths
// the column and row estimate are kept so a replay can rebuild the same
// operator without re-diving the B+tree; the probe values always come
// from the current (bound) predicate, never from the memo.
type pathChoice struct {
	kind string // "full", "index", "index_range"
	col  string
	est  int
}

// PathMemo memoizes access-path decisions per relation alias across
// executions of one cached statement. The first planning run records its
// choices; later runs replay them, skipping cost estimation. Like
// PostgreSQL's generic plans, the memoized choice is made once against
// the first execution's parameter values — the trade accepted for
// skipping per-execution index dives — and is discarded wholesale with
// the cache entry on any DDL or index change.
type PathMemo struct {
	mu    sync.Mutex
	paths map[string]pathChoice
}

// NewPathMemo builds an empty memo.
func NewPathMemo() *PathMemo { return &PathMemo{paths: make(map[string]pathChoice)} }

func (m *PathMemo) lookup(alias string) (pathChoice, bool) {
	m.mu.Lock()
	c, ok := m.paths[alias]
	m.mu.Unlock()
	return c, ok
}

func (m *PathMemo) record(alias string, c pathChoice) {
	m.mu.Lock()
	if _, dup := m.paths[alias]; !dup {
		m.paths[alias] = c
	}
	m.mu.Unlock()
}
