package plan

import (
	"fmt"
	"strings"
	"testing"

	"insightnotes/internal/exec"
	"insightnotes/internal/sql"
	"insightnotes/internal/types"
)

// costWorld builds a 2000-row table T(k, v, grp) with indexes on k (unique
// values) and grp (20 distinct values, 100 rows each), sized so selective
// and non-selective predicates land on opposite sides of the cost model's
// break-even point.
func costWorld(t *testing.T, w *world) {
	t.Helper()
	tbl, err := w.cat.CreateTable("T", types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindInt},
		types.Column{Name: "grp", Kind: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		tbl.Insert(types.Tuple{
			types.NewInt(int64(i)), types.NewInt(int64(i % 7)), types.NewInt(int64(i % 20)),
		})
	}
	for _, col := range []string{"k", "grp"} {
		if err := tbl.CreateIndex(col); err != nil {
			t.Fatal(err)
		}
	}
}

// explainOf plans q and renders its operator tree.
func explainOf(t *testing.T, w *world, q string, opts Options) string {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	op, err := New(w.cat, w.envs, opts).PlanSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	return exec.Explain(op)
}

func TestCostModelPicksIndexForSelectivePredicate(t *testing.T) {
	w := newWorld(t)
	costWorld(t, w)
	out := explainOf(t, w, "SELECT v FROM T WHERE k = 1234", Options{})
	if !strings.Contains(out, "IndexScan T") {
		t.Errorf("selective equality not index-scanned:\n%s", out)
	}
	if !strings.Contains(out, "est≈1 rows") {
		t.Errorf("estimate missing from plan:\n%s", out)
	}
	// A selective range uses the range scan.
	out = explainOf(t, w, "SELECT v FROM T WHERE k BETWEEN 10 AND 14", Options{})
	if !strings.Contains(out, "IndexRangeScan T") {
		t.Errorf("selective range not index-scanned:\n%s", out)
	}
}

func TestCostModelPicksFullScanForNonSelectivePredicate(t *testing.T) {
	w := newWorld(t)
	costWorld(t, w)
	// k >= 100 matches 95% of the table: the index would resolve ~1900
	// random lookups, so the sequential scan must win.
	out := explainOf(t, w, "SELECT v FROM T WHERE k >= 100", Options{})
	if strings.Contains(out, "IndexScan") || strings.Contains(out, "IndexRangeScan") {
		t.Errorf("non-selective predicate index-scanned:\n%s", out)
	}
	if !strings.Contains(out, "Scan T") {
		t.Errorf("expected a full scan:\n%s", out)
	}
	// With parallelism the full scan plans as a morsel-parallel scan — the
	// ParallelScan-otherwise half of the acceptance criterion.
	out = explainOf(t, w, "SELECT v FROM T WHERE k >= 100", Options{Parallelism: 4})
	if !strings.Contains(out, "ParallelScan T") {
		t.Errorf("expected ParallelScan under parallelism:\n%s", out)
	}
}

func TestCostModelPrefersMostSelectiveIndex(t *testing.T) {
	w := newWorld(t)
	costWorld(t, w)
	// Both predicates are indexed; k = 7 matches 1 row, grp = 3 matches
	// 100. The planner must pick the k index.
	out := explainOf(t, w, "SELECT v FROM T WHERE grp = 3 AND k = 7", Options{})
	if !strings.Contains(out, "IndexScan T AS T ON k = 7") {
		t.Errorf("planner did not pick the most selective index:\n%s", out)
	}
}

func TestCostModelTinyTableFullScans(t *testing.T) {
	w := newWorld(t)
	tbl, _ := w.cat.Table("R")
	if err := tbl.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	// A 3-row single-page table is cheaper to scan than to probe.
	out := explainOf(t, w, "SELECT b FROM R WHERE a = 1", Options{})
	if strings.Contains(out, "IndexScan") {
		t.Errorf("tiny table index-scanned:\n%s", out)
	}
}

func TestCostModelEquivalenceAcrossAccessPaths(t *testing.T) {
	w := newWorld(t)
	costWorld(t, w)
	// Index and forced-full-scan plans agree on results for selective and
	// non-selective predicates alike.
	for _, q := range []string{
		"SELECT k, v FROM T WHERE k = 42",
		"SELECT k, v FROM T WHERE grp = 5",
		"SELECT k, v FROM T WHERE k BETWEEN 100 AND 1900",
		"SELECT k, v FROM T WHERE k < 3",
	} {
		chosen, _ := w.run(t, q, Options{})
		forced, _ := w.run(t, q, Options{DisableIndexScan: true})
		if len(chosen) != len(forced) {
			t.Errorf("%q: chosen path %d rows, full scan %d rows", q, len(chosen), len(forced))
		}
	}
}

func TestCostModelCountersTrackChoices(t *testing.T) {
	w := newWorld(t)
	costWorld(t, w)
	var c Counters
	opts := Options{Counters: &c}
	for _, q := range []string{
		"SELECT v FROM T WHERE k = 1",       // index scan
		"SELECT v FROM T WHERE k < 5",       // index range scan
		"SELECT v FROM T WHERE k >= 100",    // full scan
	} {
		stmt, _ := sql.Parse(q)
		if _, err := New(w.cat, w.envs, opts).PlanSelect(stmt.(*sql.Select)); err != nil {
			t.Fatal(err)
		}
	}
	got := fmt.Sprintf("idx=%d range=%d full=%d",
		c.IndexScans.Load(), c.IndexRangeScans.Load(), c.FullScans.Load())
	if got != "idx=1 range=1 full=1" {
		t.Errorf("counters = %s", got)
	}
}
