// Cost-based access-path selection. For each base relation the planner
// compares the estimated cost of a sequential heap scan against the best
// index lookup or range scan a pushed-down predicate admits, using exact
// table statistics (row and page counts are maintained, not sampled) and
// capped B+tree "index dives" for match-count estimates — the classic
// System R recipe scaled down to the engine's two access-path families.
package plan

import (
	"strings"

	"insightnotes/internal/catalog"
	"insightnotes/internal/exec"
	"insightnotes/internal/sql"
	"insightnotes/internal/types"
)

// Cost-model constants, in abstract units of one sequential page read.
// The absolute values are meaningless; the ratios encode the two physical
// facts the choice hinges on: a heap scan touches every page once but
// amortizes per-row work, while an index lookup pays a B+tree descent and
// then one random page fetch per matching row.
const (
	costSeqPage = 1.0   // sequential page read (full scan)
	costSeqRow  = 0.005 // per-row decode + predicate evaluation
	costIdxSeek = 1.0   // B+tree descent to the first matching entry
	costIdxRow  = 2.0   // random heap fetch + decode per matching row
)

// diveCap bounds the B+tree index dives used for match estimates: counting
// stops once the count alone proves the index more expensive than the
// sequential scan, so dives never walk more than a break-even prefix of
// the range (plus a small floor for tiny tables).
const diveCapFloor = 64

// seqScanCost is the cost of a full heap scan of a table.
func seqScanCost(st catalog.TableStats) float64 {
	return float64(st.Pages)*costSeqPage + float64(st.Rows)*costSeqRow
}

// indexCost is the cost of resolving est matching rows through an index.
func indexCost(est int) float64 {
	return costIdxSeek + float64(est)*costIdxRow
}

// diveLimit is the index-dive cap for a table: one entry past the count at
// which the index is guaranteed to lose to the sequential scan.
func diveLimit(seqCost float64) int {
	limit := int(seqCost/costIdxRow) + 1
	if limit < diveCapFloor {
		limit = diveCapFloor
	}
	return limit
}

// indexCandidate is one pushed-down predicate an index can serve, with its
// dive-based cardinality estimate.
type indexCandidate struct {
	expr sql.Expr
	col  string // unqualified indexed column name
	est  int
	// equality candidates carry val; range candidates carry rng.
	isRange bool
	val     types.Value
	rng     valueRange
}

// chooseAccessPath picks the cheapest access path for relation r given its
// pushed-down local predicates: the best eligible index candidate when its
// estimated cost undercuts the sequential scan, the sequential (possibly
// morsel-parallel) scan otherwise. It returns the chosen scan operator with
// the planner's row estimate attached.
func (p *Planner) chooseAccessPath(r *relation, local []sql.Expr) exec.Operator {
	alias := strings.ToLower(r.ref.EffectiveAlias())
	if m := p.opts.Memo; m != nil && !p.opts.DisableIndexScan {
		if ch, ok := m.lookup(alias); ok {
			if op, replayed := p.replayPath(r, local, ch); replayed {
				if sp := p.opts.Span; sp != nil {
					sp.Attr("path_memo."+alias, ch.kind)
				}
				return op
			}
		}
	}

	st := r.table.Stats()
	seq := seqScanCost(st)

	var best *indexCandidate
	if !p.opts.DisableIndexScan {
		limit := diveLimit(seq)
		for _, e := range local {
			if col, val, ok := constEquality(e, r.schema); ok {
				_, name := types.SplitQualified(col)
				est, capped, ok := r.table.EstimateIndexEquality(name, val, limit)
				if !ok || capped {
					continue
				}
				c := indexCandidate{expr: e, col: name, est: est, val: val}
				if best == nil || c.est < best.est {
					cc := c
					best = &cc
				}
				continue
			}
			if rng, ok := constRange(e, r.schema); ok {
				_, name := types.SplitQualified(rng.col)
				est, capped, ok := r.table.EstimateIndexRange(name, rng.lo, rng.hi, rng.loInc, rng.hiInc, limit)
				if !ok || capped {
					continue
				}
				c := indexCandidate{expr: e, col: name, est: est, isRange: true, rng: rng}
				if best == nil || c.est < best.est {
					cc := c
					best = &cc
				}
			}
		}
	}

	if sp := p.opts.Span; sp != nil {
		sp.AttrFloat("cost_seq."+alias, seq)
		if best != nil {
			sp.AttrFloat("cost_index."+alias, indexCost(best.est))
			sp.Attr("index_col."+alias, best.col)
			sp.AttrInt("est_rows."+alias, int64(best.est))
		}
	}
	if best != nil && indexCost(best.est) < seq {
		if m := p.opts.Memo; m != nil && !p.opts.DisableIndexScan {
			kind := "index"
			if best.isRange {
				kind = "index_range"
			}
			m.record(alias, pathChoice{kind: kind, col: best.col, est: best.est})
		}
		if best.isRange {
			op := exec.NewIndexRangeScan(r.table, r.ref.EffectiveAlias(), best.col,
				best.rng.lo, best.rng.hi, best.rng.loInc, best.rng.hiInc, p.envs)
			op.SetEstimatedRows(best.est)
			return op
		}
		op := exec.NewIndexScan(r.table, r.ref.EffectiveAlias(), best.col, best.val, p.envs)
		op.SetEstimatedRows(best.est)
		return op
	}
	if m := p.opts.Memo; m != nil && !p.opts.DisableIndexScan {
		m.record(alias, pathChoice{kind: "full"})
	}
	return nil // sequential scan wins; accessPath builds it
}

// replayPath rebuilds the memoized access path for r, pulling probe
// values from the current (bound) predicates. It reports false when the
// recorded shape no longer matches the predicate set — the caller then
// falls back to full cost-based selection.
func (p *Planner) replayPath(r *relation, local []sql.Expr, ch pathChoice) (exec.Operator, bool) {
	switch ch.kind {
	case "full":
		return nil, true
	case "index":
		for _, e := range local {
			col, val, ok := constEquality(e, r.schema)
			if !ok {
				continue
			}
			if _, name := types.SplitQualified(col); name == ch.col {
				op := exec.NewIndexScan(r.table, r.ref.EffectiveAlias(), ch.col, val, p.envs)
				op.SetEstimatedRows(ch.est)
				return op, true
			}
		}
	case "index_range":
		for _, e := range local {
			rng, ok := constRange(e, r.schema)
			if !ok {
				continue
			}
			if _, name := types.SplitQualified(rng.col); name == ch.col {
				op := exec.NewIndexRangeScan(r.table, r.ref.EffectiveAlias(), ch.col,
					rng.lo, rng.hi, rng.loInc, rng.hiInc, p.envs)
				op.SetEstimatedRows(ch.est)
				return op, true
			}
		}
	}
	return nil, false
}
