// Package plan builds summary-aware physical plans from parsed SELECT
// statements: predicate pushdown, index-scan selection, left-deep hash
// joins, grouping/aggregation, and — central to the paper — projection
// pushdown that curates the annotation summaries of each input relation
// down to the columns still needed downstream *before* any merge operation.
// Theorems 1 and 2 of the companion paper prove that this curate-before-
// merge discipline makes summary propagation identical across equivalent
// plans; Options.DisableProjectionPushdown exists so benchmarks and tests
// can demonstrate the theorem by violating it.
package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"insightnotes/internal/catalog"
	"insightnotes/internal/exec"
	"insightnotes/internal/sql"
	"insightnotes/internal/trace"
	"insightnotes/internal/types"
)

// Options tune planning, mostly for experiments and ablations.
type Options struct {
	// DisableProjectionPushdown keeps full tuples (and full summary
	// envelopes) until the final projection, violating curate-before-merge.
	DisableProjectionPushdown bool
	// DisableIndexScan forces full scans even when an index matches.
	DisableIndexScan bool
	// Trace, when set, wraps every pipeline stage with a logging operator
	// so intermediate tuples and their summary objects can be visualized —
	// the demonstration's "under-the-hood execution" feature (Figure 5).
	// The entries land in the per-statement sink owned by the ExecContext
	// the plan is executed under.
	Trace bool
	// Parallelism is the worker count for morsel-driven parallel base-table
	// scans. Values above 1 replace the full-scan access path with a
	// ParallelScan that absorbs the relation's pushed-down predicate and
	// projection into the worker pool; 0 and 1 keep every scan serial.
	// Index scans are never parallelized.
	Parallelism int
	// Counters, when set, receives planning-decision counts (plans built,
	// access paths chosen). Shared across planner instances; safe for
	// concurrent use.
	Counters *Counters
	// Span, when set, is the statement's lifecycle plan span: the planner
	// records its access-path decisions and cost estimates on it as
	// attributes (one set per base relation). Per-statement, never shared.
	Span *trace.SpanHandle
	// Memo, when set, is the cached statement's access-path memo
	// (cache.go): recorded decisions are replayed instead of re-costed,
	// and first-time decisions are recorded for later executions. Shared
	// across executions of one cached statement; safe for concurrent use.
	Memo *PathMemo
}

// Counters are cumulative planning-decision counts, incremented by every
// planner sharing them. All fields are atomic; a nil *Counters disables
// counting.
type Counters struct {
	// Plans is the number of SELECT plans built.
	Plans atomic.Int64
	// FullScans, IndexScans, and IndexRangeScans count access-path choices,
	// one per base relation planned.
	FullScans       atomic.Int64
	IndexScans      atomic.Int64
	IndexRangeScans atomic.Int64
	// ParallelScans counts full scans planned as morsel-parallel (also
	// counted in FullScans).
	ParallelScans atomic.Int64
}

// Planner compiles SELECT statements into operator trees.
type Planner struct {
	cat  *catalog.Catalog
	envs exec.EnvelopeSource
	opts Options
}

// New creates a planner over the catalog; envs supplies base-table summary
// envelopes (nil for summary-less execution).
func New(cat *catalog.Catalog, envs exec.EnvelopeSource, opts Options) *Planner {
	return &Planner{cat: cat, envs: envs, opts: opts}
}

// relation is one FROM/JOIN entry during planning.
type relation struct {
	ref    sql.TableRef
	table  *catalog.Table
	schema types.Schema // aliased
	op     exec.Operator
}

// PlanSelect builds the physical plan for s.
func (p *Planner) PlanSelect(s *sql.Select) (exec.Operator, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("plan: query needs a FROM clause")
	}
	if c := p.opts.Counters; c != nil {
		c.Plans.Add(1)
	}
	// Resolve relations (FROM entries then JOIN entries).
	var rels []*relation
	seen := map[string]bool{}
	addRel := func(ref sql.TableRef) error {
		tbl, err := p.cat.Table(ref.Name)
		if err != nil {
			return err
		}
		alias := strings.ToLower(ref.EffectiveAlias())
		if seen[alias] {
			return fmt.Errorf("plan: duplicate relation alias %q", ref.EffectiveAlias())
		}
		seen[alias] = true
		rels = append(rels, &relation{
			ref:    ref,
			table:  tbl,
			schema: tbl.Schema().WithTable(ref.EffectiveAlias()),
		})
		return nil
	}
	for _, ref := range s.From {
		if err := addRel(ref); err != nil {
			return nil, err
		}
	}
	for _, j := range s.Joins {
		if err := addRel(j.Ref); err != nil {
			return nil, err
		}
	}

	// Gather predicates: WHERE conjuncts plus JOIN ON conjuncts.
	// Summary-based conjuncts (§2.1) are routed separately: they evaluate
	// against summary envelopes, never participate in index selection or
	// join-key extraction, and relations they touch keep their full column
	// set so the predicate observes the stored summaries.
	var preds, summaryPreds []sql.Expr
	for _, e := range append(exec.SplitConjuncts(s.Where), joinConjuncts(s)...) {
		if exec.HasSummaryCall(e) {
			summaryPreds = append(summaryPreds, e)
		} else {
			preds = append(preds, e)
		}
	}

	// Full combined schema, for validation of multi-relation expressions.
	combined := types.Schema{}
	for _, r := range rels {
		combined = combined.Concat(r.schema)
	}

	// Expand stars and collect aggregates before computing needed columns.
	items, err := expandStars(s.Items, rels, combined)
	if err != nil {
		return nil, err
	}
	aggs := collectAggregates(items, s.Having)
	hasAgg := len(aggs) > 0 || len(s.GroupBy) > 0
	if hasAgg {
		if err := validateGrouping(items, s.GroupBy); err != nil {
			return nil, err
		}
	}

	// Needed columns per relation: everything referenced anywhere.
	needed, err := p.neededColumns(rels, combined, items, preds, s)
	if err != nil {
		return nil, err
	}

	// Build per-relation access paths with pushed-down single-relation
	// predicates and (unless disabled) projection pushdown for
	// curate-before-merge. Summary predicates bound to one relation apply
	// above its scan, before any projection, so they see the full stored
	// summaries.
	remaining := make([]sql.Expr, 0, len(preds))
	remainingSummary := make([]sql.Expr, 0, len(summaryPreds))
	for i, r := range rels {
		op, consumed, err := p.accessPath(r, preds)
		if err != nil {
			return nil, err
		}
		r.op = op
		_ = consumed
		pushedSummary := false
		for _, e := range summaryPreds {
			if !p.summaryPredBindsTo(e, r, rels) {
				continue
			}
			c, err := exec.CompileRow(e, r.schema)
			if err != nil {
				return nil, err
			}
			r.op = exec.NewRowFilter(r.op, c)
			pushedSummary = true
		}
		if !p.opts.DisableProjectionPushdown && !pushedSummary {
			r.op, r.schema, err = p.pushProjection(r, needed[i])
			if err != nil {
				return nil, err
			}
		}
		r.op = p.trace(r.op, "scan+curate("+r.ref.EffectiveAlias()+")")
	}
	for _, e := range summaryPreds {
		bound := false
		for _, r := range rels {
			if p.summaryPredBindsTo(e, r, rels) {
				bound = true
				break
			}
		}
		if !bound {
			remainingSummary = append(remainingSummary, e)
		}
	}
	// Drop predicates consumed by access paths.
	for _, e := range preds {
		if !predConsumed(e, rels) {
			remaining = append(remaining, e)
		}
	}

	// Left-deep joins in declaration order.
	cur := rels[0].op
	curSchema := rels[0].schema
	for _, r := range rels[1:] {
		joinSchema := curSchema.Concat(r.schema)
		var eqLeft, eqRight []*exec.Compiled
		var leftover []sql.Expr
		for _, e := range remaining {
			if !exec.ReferencesOnly(e, joinSchema) {
				leftover = append(leftover, e)
				continue
			}
			l, rKey, ok := equiJoinKeys(e, curSchema, r.schema)
			if ok {
				lc, err := exec.Compile(l, curSchema)
				if err != nil {
					return nil, err
				}
				rc, err := exec.Compile(rKey, r.schema)
				if err != nil {
					return nil, err
				}
				eqLeft = append(eqLeft, lc)
				eqRight = append(eqRight, rc)
				continue
			}
			leftover = append(leftover, e)
		}
		if len(eqLeft) > 0 {
			cur = p.trace(exec.NewHashJoin(cur, r.op, eqLeft, eqRight),
				"join("+r.ref.EffectiveAlias()+")")
		} else {
			// Collect any resolvable non-equi condition into the NL join.
			var cond sql.Expr
			var still []sql.Expr
			for _, e := range leftover {
				if exec.ReferencesOnly(e, joinSchema) {
					cond = andExpr(cond, e)
				} else {
					still = append(still, e)
				}
			}
			leftover = still
			var compiled *exec.Compiled
			if cond != nil {
				var err error
				compiled, err = exec.Compile(cond, joinSchema)
				if err != nil {
					return nil, err
				}
			}
			cur = p.trace(exec.NewNestedLoopJoin(cur, r.op, compiled),
				"nljoin("+r.ref.EffectiveAlias()+")")
		}
		curSchema = joinSchema
		// Apply now-resolvable leftover predicates as filters.
		var still []sql.Expr
		for _, e := range leftover {
			if exec.ReferencesOnly(e, curSchema) {
				c, err := exec.Compile(e, curSchema)
				if err != nil {
					return nil, err
				}
				cur = exec.NewFilter(cur, c)
			} else {
				still = append(still, e)
			}
		}
		remaining = still
	}
	if len(remaining) > 0 {
		return nil, fmt.Errorf("plan: unresolved predicate %s", remaining[0])
	}
	// Multi-relation (or unbound) summary predicates apply to the joined
	// rows, observing the merged summaries.
	for _, e := range remainingSummary {
		c, err := exec.CompileRow(e, curSchema)
		if err != nil {
			return nil, err
		}
		cur = exec.NewRowFilter(cur, c)
	}

	// Aggregation and final projection.
	if hasAgg {
		cur, err = p.planAggregate(cur, curSchema, items, s, aggs)
		if err != nil {
			return nil, err
		}
		cur = p.trace(cur, "aggregate+project")
	} else {
		cur, err = p.planProjection(cur, curSchema, items)
		if err != nil {
			return nil, err
		}
		cur = p.trace(cur, "project")
	}
	if s.Distinct {
		cur = p.trace(exec.NewDistinct(cur), "distinct")
	}
	if len(s.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(s.OrderBy))
		summaryKeys := false
		for i, o := range s.OrderBy {
			c, err := exec.CompileRow(o.Expr, cur.Schema())
			if err != nil {
				return nil, fmt.Errorf("plan: ORDER BY must reference output columns: %w", err)
			}
			if c.HasSummaryTerms() {
				summaryKeys = true
			}
			keys[i] = exec.SortKey{Expr: c, Desc: o.Desc}
		}
		if summaryKeys {
			// Summary-based ordering (§2.1) reads the summaries as
			// reported in the output.
			cur = exec.NewRowSort(cur, keys)
		} else {
			cur = exec.NewSort(cur, keys)
		}
	}
	if s.Limit >= 0 {
		cur = exec.NewLimit(cur, s.Limit)
	}
	return cur, nil
}

// accessPath builds the scan (or index scan) plus pushed single-relation
// filters for r.
func (p *Planner) accessPath(r *relation, preds []sql.Expr) (exec.Operator, []sql.Expr, error) {
	var consumed []sql.Expr
	var local []sql.Expr
	for _, e := range preds {
		if exec.ReferencesOnly(e, r.schema) && referencesRelation(e, r.schema) {
			local = append(local, e)
		}
	}
	// Cost-based index selection (cost.go): the cheapest index lookup or
	// range scan a local predicate admits, when it undercuts the estimated
	// sequential-scan cost; nil when the sequential scan wins.
	op := p.chooseAccessPath(r, local)
	absorbed := false
	if op == nil {
		if n := p.opts.Parallelism; n > 1 {
			// Morsel-parallel full scan: the conjunction of the pushed-down
			// predicates is absorbed into the worker pool instead of stacked
			// as Filter operators above the scan.
			var pred *exec.Compiled
			if len(local) > 0 {
				var all sql.Expr
				for _, e := range local {
					all = andExpr(all, e)
				}
				c, err := exec.Compile(all, r.schema)
				if err != nil {
					return nil, nil, err
				}
				pred = c
			}
			ps := exec.NewParallelScan(r.table, r.ref.EffectiveAlias(), p.envs, pred, nil, n)
			ps.SetEstimatedRows(r.table.Stats().Rows)
			op = ps
			consumed = append(consumed, local...)
			absorbed = true
		} else {
			sc := exec.NewScan(r.table, r.ref.EffectiveAlias(), p.envs)
			sc.SetEstimatedRows(r.table.Stats().Rows)
			op = sc
		}
	}
	pathName := "full_scan"
	switch op.(type) {
	case *exec.IndexScan:
		pathName = "index_scan"
	case *exec.IndexRangeScan:
		pathName = "index_range_scan"
	case *exec.ParallelScan:
		pathName = "parallel_scan"
	}
	if c := p.opts.Counters; c != nil {
		switch pathName {
		case "index_scan":
			c.IndexScans.Add(1)
		case "index_range_scan":
			c.IndexRangeScans.Add(1)
		case "parallel_scan":
			c.FullScans.Add(1)
			c.ParallelScans.Add(1)
		default:
			c.FullScans.Add(1)
		}
	}
	p.opts.Span.Attr("path."+strings.ToLower(r.ref.EffectiveAlias()), pathName)
	if !absorbed {
		for _, e := range local {
			c, err := exec.Compile(e, r.schema)
			if err != nil {
				return nil, nil, err
			}
			op = exec.NewFilter(op, c)
			consumed = append(consumed, e)
		}
	}
	return op, consumed, nil
}

// pushProjection narrows r's output to the needed column ordinals,
// curating summary envelopes before any merge (the theorem discipline).
// All columns are kept when the relation is fully referenced.
func (p *Planner) pushProjection(r *relation, needed map[int]bool) (exec.Operator, types.Schema, error) {
	if len(needed) >= r.schema.Len() {
		return r.op, r.schema, nil
	}
	idxs := make([]int, 0, len(needed))
	for i := range needed {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	if len(idxs) == 0 {
		// A relation no one references (pure cartesian filter) keeps its
		// first column so the tuple is non-empty.
		idxs = []int{0}
	}
	items := make([]exec.ProjectItem, len(idxs))
	for j, ix := range idxs {
		col := r.schema.Columns[ix]
		c, err := exec.Compile(&sql.ColRef{Name: col.QualifiedName()}, r.schema)
		if err != nil {
			return nil, types.Schema{}, err
		}
		items[j] = exec.ProjectItem{Expr: c, Col: col}
	}
	// A morsel-parallel scan absorbs the pushed projection into its worker
	// pool, so the per-tuple curation parallelizes with the scan.
	if ps, ok := r.op.(*exec.ParallelScan); ok {
		ps.AbsorbProject(items)
		return ps, ps.Schema(), nil
	}
	op := exec.NewProject(r.op, items)
	return op, op.Schema(), nil
}

// neededColumns computes, per relation, the set of column ordinals
// referenced by the query (select items, predicates, grouping, having,
// order by).
func (p *Planner) neededColumns(rels []*relation, combined types.Schema,
	items []sql.SelectItem, preds []sql.Expr, s *sql.Select) ([]map[int]bool, error) {
	needed := make([]map[int]bool, len(rels))
	for i := range needed {
		needed[i] = map[int]bool{}
	}
	mark := func(ref string) error {
		for i, r := range rels {
			if ix, err := r.schema.ColumnIndex(ref); err == nil {
				needed[i][ix] = true
				return nil
			}
		}
		// Aliases of output columns (ORDER BY n) resolve later; report
		// unknown references against the combined schema for a good error.
		if _, err := combined.ColumnIndex(ref); err != nil {
			return err
		}
		return nil
	}
	markExpr := func(e sql.Expr) error {
		for _, ref := range exec.ReferencedColumns(e) {
			if err := mark(ref); err != nil {
				return err
			}
		}
		return nil
	}
	for _, it := range items {
		if err := markExpr(it.Expr); err != nil {
			return nil, err
		}
	}
	for _, e := range preds {
		if err := markExpr(e); err != nil {
			return nil, err
		}
	}
	for _, g := range s.GroupBy {
		if err := markExpr(g); err != nil {
			return nil, err
		}
	}
	if s.Having != nil {
		for _, ref := range exec.ReferencedColumns(s.Having) {
			_ = mark(ref) // may be an alias; aggregation rewrite validates
		}
	}
	for _, o := range s.OrderBy {
		for _, ref := range exec.ReferencedColumns(o.Expr) {
			_ = mark(ref) // may reference an output alias
		}
	}
	return needed, nil
}

// predConsumed reports whether e was a single-relation predicate (it was
// applied inside some access path).
func predConsumed(e sql.Expr, rels []*relation) bool {
	for _, r := range rels {
		if exec.ReferencesOnly(e, r.schema) && referencesRelation(e, r.schema) {
			return true
		}
	}
	return false
}

// referencesRelation reports whether e references at least one column (so
// constant predicates don't bind to arbitrary relations).
func referencesRelation(e sql.Expr, schema types.Schema) bool {
	return len(exec.ReferencedColumns(e)) > 0
}

// equiJoinKeys recognizes `l = r` with one side resolving in left and the
// other in right.
func equiJoinKeys(e sql.Expr, left, right types.Schema) (sql.Expr, sql.Expr, bool) {
	b, ok := e.(*sql.BinaryExpr)
	if !ok || b.Op != "=" {
		return nil, nil, false
	}
	if exec.ReferencesOnly(b.L, left) && exec.ReferencesOnly(b.R, right) &&
		len(exec.ReferencedColumns(b.L)) > 0 && len(exec.ReferencedColumns(b.R)) > 0 {
		return b.L, b.R, true
	}
	if exec.ReferencesOnly(b.R, left) && exec.ReferencesOnly(b.L, right) &&
		len(exec.ReferencedColumns(b.L)) > 0 && len(exec.ReferencedColumns(b.R)) > 0 {
		return b.R, b.L, true
	}
	return nil, nil, false
}

// valueRange is a one-column range extracted from a predicate.
type valueRange struct {
	col          string
	lo, hi       *types.Value
	loInc, hiInc bool
}

// constRange recognizes `col OP literal` for OP in {<, <=, >, >=} (either
// orientation) and non-negated `col BETWEEN lo AND hi` against schema.
func constRange(e sql.Expr, schema types.Schema) (valueRange, bool) {
	switch x := e.(type) {
	case *sql.BetweenExpr:
		if x.Negate {
			return valueRange{}, false
		}
		cr, ok := x.X.(*sql.ColRef)
		if !ok || !schema.HasColumn(cr.Name) {
			return valueRange{}, false
		}
		lo, okLo := x.Lo.(*sql.Literal)
		hi, okHi := x.Hi.(*sql.Literal)
		if !okLo || !okHi {
			return valueRange{}, false
		}
		return valueRange{col: cr.Name, lo: &lo.Val, hi: &hi.Val, loInc: true, hiInc: true}, true
	case *sql.BinaryExpr:
		op := x.Op
		var col string
		var lit types.Value
		if cr, ok := x.L.(*sql.ColRef); ok {
			l, ok2 := x.R.(*sql.Literal)
			if !ok2 || !schema.HasColumn(cr.Name) {
				return valueRange{}, false
			}
			col, lit = cr.Name, l.Val
		} else if cr, ok := x.R.(*sql.ColRef); ok {
			l, ok2 := x.L.(*sql.Literal)
			if !ok2 || !schema.HasColumn(cr.Name) {
				return valueRange{}, false
			}
			col, lit = cr.Name, l.Val
			// Flip the operator: `lit OP col` ≡ `col flip(OP) lit`.
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		} else {
			return valueRange{}, false
		}
		switch op {
		case "<":
			return valueRange{col: col, hi: &lit}, true
		case "<=":
			return valueRange{col: col, hi: &lit, hiInc: true}, true
		case ">":
			return valueRange{col: col, lo: &lit}, true
		case ">=":
			return valueRange{col: col, lo: &lit, loInc: true}, true
		}
	}
	return valueRange{}, false
}

// constEquality recognizes `col = literal` (either side) against schema.
func constEquality(e sql.Expr, schema types.Schema) (string, types.Value, bool) {
	b, ok := e.(*sql.BinaryExpr)
	if !ok || b.Op != "=" {
		return "", types.Value{}, false
	}
	if cr, ok := b.L.(*sql.ColRef); ok {
		if lit, ok := b.R.(*sql.Literal); ok && schema.HasColumn(cr.Name) {
			return cr.Name, lit.Val, true
		}
	}
	if cr, ok := b.R.(*sql.ColRef); ok {
		if lit, ok := b.L.(*sql.Literal); ok && schema.HasColumn(cr.Name) {
			return cr.Name, lit.Val, true
		}
	}
	return "", types.Value{}, false
}

// joinConjuncts flattens every JOIN ON clause into conjuncts.
func joinConjuncts(s *sql.Select) []sql.Expr {
	var out []sql.Expr
	for _, j := range s.Joins {
		out = append(out, exec.SplitConjuncts(j.On)...)
	}
	return out
}

// summaryPredBindsTo reports whether summary conjunct e belongs above
// relation r's scan: every column reference resolves in r, and every
// referenced summary instance is linked to r's table. Predicates that bind
// to several relations are kept post-join instead.
func (p *Planner) summaryPredBindsTo(e sql.Expr, r *relation, rels []*relation) bool {
	if !exec.ReferencesOnly(e, r.schema) {
		return false
	}
	instances := exec.SummaryInstancesIn(e)
	if len(instances) == 0 {
		return false
	}
	for _, in := range instances {
		if !p.cat.IsLinked(in, r.table.Name()) {
			return false
		}
	}
	// If another relation also satisfies the binding (same instance linked
	// there and no distinguishing columns), the predicate is ambiguous and
	// stays post-join.
	for _, other := range rels {
		if other == r {
			continue
		}
		if exec.ReferencesOnly(e, other.schema) && len(exec.ReferencedColumns(e)) == 0 {
			allLinked := true
			for _, in := range instances {
				if !p.cat.IsLinked(in, other.table.Name()) {
					allLinked = false
					break
				}
			}
			if allLinked {
				return false
			}
		}
	}
	return true
}

// trace wraps op with a logging stage when tracing is enabled.
func (p *Planner) trace(op exec.Operator, stage string) exec.Operator {
	if !p.opts.Trace {
		return op
	}
	return exec.NewTrace(op, stage)
}

func andExpr(a, b sql.Expr) sql.Expr {
	if a == nil {
		return b
	}
	return &sql.BinaryExpr{Op: "AND", L: a, R: b}
}

// expandStars replaces * and t.* items with explicit column references.
func expandStars(items []sql.SelectItem, rels []*relation, combined types.Schema) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, r := range rels {
			alias := r.ref.EffectiveAlias()
			if it.StarTable != "" && !strings.EqualFold(it.StarTable, alias) {
				continue
			}
			matched = true
			for _, col := range r.schema.Columns {
				out = append(out, sql.SelectItem{Expr: &sql.ColRef{Name: col.QualifiedName()}})
			}
		}
		if !matched {
			return nil, fmt.Errorf("plan: %s.* matches no relation", it.StarTable)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plan: empty select list")
	}
	return out, nil
}
