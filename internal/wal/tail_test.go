package wal

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func openTailT(t *testing.T, path string) *TailReader {
	t.Helper()
	tr, err := OpenTail(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestTailReadsCommittedRecords(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	for i := 1; i <= 4; i++ {
		if _, err := l.Append("insert", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	tr := openTailT(t, l.Path())
	durable, _, _ := l.DurableFrontier()
	for i := 1; i <= 4; i++ {
		rec, err := tr.Next(durable)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.LSN != uint64(i) || rec.Type != "insert" {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	if _, err := tr.Next(durable); err != io.EOF {
		t.Fatalf("at frontier: err = %v, want io.EOF", err)
	}
	// New commits become visible to the same reader.
	if _, err := l.Append("insert", payload{N: 5}); err != nil {
		t.Fatal(err)
	}
	durable, _, _ = l.DurableFrontier()
	rec, err := tr.Next(durable)
	if err != nil || rec.LSN != 5 {
		t.Fatalf("after new append: rec=%+v err=%v", rec, err)
	}
}

// TestTailIncompleteFinalFrame is the streaming-case hardening: a frame
// that is only partially visible at the end of a live log must read as a
// retryable incomplete tail, never as corruption, and must succeed once
// the rest of the frame lands.
func TestTailIncompleteFinalFrame(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	if _, err := l.Append("insert", payload{N: 1, S: "first"}); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("insert", payload{N: 2, S: "second"}); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	second := whole[len(full):]

	// Reconstruct the log truncated at every prefix length of the second
	// frame: short header, short payload, and (one byte short) a frame
	// whose CRC cannot match yet.
	for cut := 0; cut < len(second); cut++ {
		path := filepath.Join(dir, "partial.log")
		if err := os.WriteFile(path, append(append([]byte{}, full...), second[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		tr, err := OpenTail(path)
		if err != nil {
			t.Fatal(err)
		}
		if rec, err := tr.Next(-1); err != nil || rec.LSN != 1 {
			t.Fatalf("cut=%d: first record rec=%+v err=%v", cut, rec, err)
		}
		_, err = tr.Next(-1)
		switch {
		case cut == 0:
			if err != io.EOF {
				t.Fatalf("cut=0: err = %v, want io.EOF", err)
			}
		default:
			if !errors.Is(err, ErrIncompleteTail) {
				t.Fatalf("cut=%d: err = %v, want ErrIncompleteTail", cut, err)
			}
		}
		// Completing the frame turns the retry into a success on the
		// same reader — the streaming case.
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(second[cut:]); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if rec, err := tr.Next(-1); err != nil || rec.LSN != 2 {
			t.Fatalf("cut=%d: completed frame rec=%+v err=%v", cut, rec, err)
		}
		tr.Close()
	}
}

// TestTailDurableBoundSemantics: a frame past the durable frontier is
// withheld even when fully visible, and a malformed frame strictly below
// the frontier is corruption, not an incomplete tail.
func TestTailDurableBoundSemantics(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	if _, err := l.Append("insert", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	firstEnd, _, _ := l.DurableFrontier()
	if _, err := l.Append("insert", payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	tr := openTailT(t, l.Path())
	if rec, err := tr.Next(firstEnd); err != nil || rec.LSN != 1 {
		t.Fatalf("rec=%+v err=%v", rec, err)
	}
	// Fully written second frame, but the caller's frontier stops at the
	// first: cleanly caught up at the boundary, withheld as incomplete
	// when the frontier lands mid-frame.
	if _, err := tr.Next(firstEnd); err != io.EOF {
		t.Fatalf("at frontier: err = %v, want io.EOF", err)
	}
	if _, err := tr.Next(firstEnd + 4); err != ErrIncompleteTail {
		t.Fatalf("frontier mid-frame: err = %v, want ErrIncompleteTail", err)
	}
	durable, _, _ := l.DurableFrontier()
	if rec, err := tr.Next(durable); err != nil || rec.LSN != 2 {
		t.Fatalf("rec=%+v err=%v", rec, err)
	}

	// Corrupt the second frame's payload in place: below the durable
	// frontier that is damage, not a write in progress.
	raw, err := os.ReadFile(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(l.Path(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	tr2 := openTailT(t, l.Path())
	if rec, err := tr2.Next(durable); err != nil || rec.LSN != 1 {
		t.Fatalf("rec=%+v err=%v", rec, err)
	}
	if _, err := tr2.Next(durable); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt below frontier: err = %v, want ErrCorrupt", err)
	}
}

func TestTailCorruptLengthField(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	if _, err := l.Append("insert", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(l.Path(), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxRecordBytes+1)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tr := openTailT(t, l.Path())
	if _, err := tr.Next(-1); err != nil {
		t.Fatal(err)
	}
	// An out-of-range length can never become valid, durable bound or not.
	if _, err := tr.Next(-1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTailRotationDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	for i := 1; i <= 3; i++ {
		if _, err := l.Append("insert", payload{N: i, S: "padding to make frames non-trivial"}); err != nil {
			t.Fatal(err)
		}
	}
	tr := openTailT(t, l.Path())
	durable, gen0, _ := l.DurableFrontier()
	for i := 1; i <= 3; i++ {
		if _, err := tr.Next(durable); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint rotation: the file shrinks to empty under the reader.
	if err := l.Reset(3); err != nil {
		t.Fatal(err)
	}
	if _, gen1, _ := l.DurableFrontier(); gen1 == gen0 {
		t.Fatal("Reset did not bump the checkpoint generation")
	}
	if _, err := tr.Next(-1); err != ErrRotated {
		t.Fatalf("err = %v, want ErrRotated", err)
	}
}

func TestStageRecordExplicitLSNs(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	for _, lsn := range []uint64{3, 4, 9} { // gap: a resync jumped the sequence
		tok, err := l.StageRecord(Record{LSN: lsn, Type: "insert", Data: []byte(`{"n":1}`)})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(tok); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.LastLSN(); got != 9 {
		t.Fatalf("LastLSN = %d, want 9", got)
	}
	if _, err := l.StageRecord(Record{LSN: 9, Type: "insert"}); err == nil {
		t.Fatal("staging a stale LSN succeeded")
	}
	if _, err := l.StageRecord(Record{LSN: 0, Type: "insert"}); err == nil {
		t.Fatal("staging LSN 0 succeeded")
	}
	// The staged records replay with their assigned LSNs intact.
	var lsns []uint64
	if _, err := Replay(l.Path(), 0, func(r Record) error {
		lsns = append(lsns, r.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 3 || lsns[0] != 3 || lsns[1] != 4 || lsns[2] != 9 {
		t.Fatalf("replayed LSNs = %v", lsns)
	}
}

func TestSubscribeDurableWakesOnCommitResetAndDeath(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	ch := make(chan struct{}, 1)
	l.SubscribeDurable(ch)
	drain := func() {
		select {
		case <-ch:
		default:
		}
	}
	if _, err := l.Append("insert", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("no wakeup after commit")
	}
	drain()
	if err := l.Reset(1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("no wakeup after reset")
	}
	drain()
	l.Kill()
	select {
	case <-ch:
	default:
		t.Fatal("no wakeup after kill")
	}
	if _, _, dead := l.DurableFrontier(); !dead {
		t.Fatal("frontier does not report death")
	}
	l.UnsubscribeDurable(ch)
	if _, _, _ = l.DurableFrontier(); len(l.subs) != 0 {
		t.Fatal("unsubscribe left the subscriber registered")
	}
}
