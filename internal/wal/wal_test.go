package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"insightnotes/internal/failpoint"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func openT(t *testing.T, dir string, lastLSN uint64) *Log {
	t.Helper()
	l, err := Open(filepath.Join(dir, "wal.log"), lastLSN)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	for i := 1; i <= 5; i++ {
		lsn, err := l.Append("insert", payload{N: i, S: "row"})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if st := l.Stats(); st.Appends != 5 || st.Fsyncs != 5 {
		t.Fatalf("stats = %+v, want 5 appends / 5 fsyncs", st)
	}
	l.Close()

	var got []Record
	res, err := Replay(filepath.Join(dir, "wal.log"), 0, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || res.Replayed != 5 || res.Skipped != 0 || res.LastLSN != 5 {
		t.Fatalf("replay result = %+v", res)
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) || r.Type != "insert" {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestReplaySkipsThroughSnapshotLSN(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	for i := 1; i <= 6; i++ {
		if _, err := l.Append("m", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	var applied []uint64
	res, err := Replay(filepath.Join(dir, "wal.log"), 4, func(r Record) error {
		applied = append(applied, r.LSN)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 4 || res.Replayed != 2 {
		t.Fatalf("replay result = %+v", res)
	}
	if len(applied) != 2 || applied[0] != 5 || applied[1] != 6 {
		t.Fatalf("applied = %v, want [5 6]", applied)
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	res, err := Replay(filepath.Join(t.TempDir(), "absent.log"), 0, func(Record) error {
		t.Fatal("apply called on missing log")
		return nil
	})
	if err != nil || res.Replayed != 0 || res.Torn {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
}

// corruptTail appends raw garbage and asserts replay truncates it while
// preserving the intact prefix.
func TestReplayTruncatesTornTail(t *testing.T) {
	cases := []struct {
		name string
		tail func(goodPayload []byte) []byte
	}{
		{"partial_header", func([]byte) []byte { return []byte{0xAA, 0xBB} }},
		{"partial_payload", func(p []byte) []byte {
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint32(buf[0:4], uint32(len(p)+100))
			binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(p))
			return append(buf, p[:4]...)
		}},
		{"crc_mismatch", func(p []byte) []byte {
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint32(buf[0:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(p)+1)
			return append(buf, p...)
		}},
		{"bad_json", func([]byte) []byte {
			p := []byte("{not json")
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint32(buf[0:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(p))
			return append(buf, p...)
		}},
		{"zero_length", func([]byte) []byte { return []byte{0, 0, 0, 0, 1, 2, 3, 4} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "wal.log")
			l, err := Open(path, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 3; i++ {
				if _, err := l.Append("m", payload{N: i}); err != nil {
					t.Fatal(err)
				}
			}
			goodSize := l.Size()
			l.Close()
			good, err := frame(Record{LSN: 99, Type: "m", Data: []byte(`{"n":99}`)})
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail(good[8:])); err != nil {
				t.Fatal(err)
			}
			f.Close()

			var applied int
			res, err := Replay(path, 0, func(Record) error { applied++; return nil })
			if err != nil {
				t.Fatal(err)
			}
			if !res.Torn || res.TornOffset != goodSize {
				t.Fatalf("res = %+v, want torn at %d", res, goodSize)
			}
			if applied != 3 {
				t.Fatalf("applied = %d, want 3 intact records", applied)
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != goodSize {
				t.Fatalf("file size after truncate = %d, want %d", st.Size(), goodSize)
			}
			// A second replay over the truncated log is clean.
			res2, err := Replay(path, 0, func(Record) error { return nil })
			if err != nil || res2.Torn || res2.Replayed != 3 {
				t.Fatalf("second replay = %+v, err = %v", res2, err)
			}
		})
	}
}

func TestResetContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l := openT(t, dir, 0)
	for i := 1; i <= 3; i++ {
		if _, err := l.Append("m", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(l.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size after reset = %d", l.Size())
	}
	lsn, err := l.Append("m", payload{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("post-reset lsn = %d, want 4", lsn)
	}
	l.Close()
	res, err := Replay(path, 3, func(r Record) error {
		if r.LSN != 4 {
			return errors.New("unexpected record")
		}
		return nil
	})
	if err != nil || res.Replayed != 1 || res.Skipped != 0 {
		t.Fatalf("replay after reset = %+v, err = %v", res, err)
	}
}

func TestFailedAppendRollsBack(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l := openT(t, dir, 0)
	if _, err := l.Append("m", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk unhappy")

	// before-write: nothing reaches the file.
	failpoint.EnableError(failpoint.WALAppendBefore, boom)
	if _, err := l.Append("m", payload{N: 2}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	failpoint.Disable(failpoint.WALAppendBefore)

	// before-sync (non-crash): frame written then rolled back.
	failpoint.EnableError(failpoint.WALAppendBeforeSync, boom)
	if _, err := l.Append("m", payload{N: 3}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	failpoint.Disable(failpoint.WALAppendBeforeSync)

	if st := l.Stats(); st.AppendErrors != 2 || st.Appends != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The log is still usable and consistent.
	if _, err := l.Append("m", payload{N: 4}); err != nil {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != 2 {
		t.Fatalf("lastLSN = %d, want 2 (failed appends consumed no LSN)", got)
	}
	l.Close()
	var lsns []uint64
	res, err := Replay(path, 0, func(r Record) error { lsns = append(lsns, r.LSN); return nil })
	if err != nil || res.Torn {
		t.Fatalf("replay = %+v, err = %v", res, err)
	}
	if len(lsns) != 2 || lsns[0] != 1 || lsns[1] != 2 {
		t.Fatalf("recovered lsns = %v, want [1 2]", lsns)
	}
}

func TestInjectedCrashLeavesTornRecordAndKillsLog(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l := openT(t, dir, 0)
	if _, err := l.Append("m", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	goodSize := l.Size()
	failpoint.EnableError(failpoint.WALAppendPartial, failpoint.CrashError(failpoint.WALAppendPartial))
	_, err := l.Append("m", payload{N: 2, S: "torn"})
	if !failpoint.IsCrash(err) {
		t.Fatalf("err = %v, want crash", err)
	}
	failpoint.Reset()
	// Dead handle refuses further work.
	if _, err := l.Append("m", payload{N: 3}); !errors.Is(err, ErrLogDead) {
		t.Fatalf("append on dead log = %v", err)
	}
	if err := l.Reset(0); !errors.Is(err, ErrLogDead) {
		t.Fatalf("reset on dead log = %v", err)
	}
	l.Close()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() <= goodSize {
		t.Fatalf("no torn bytes on disk: size %d <= %d", st.Size(), goodSize)
	}
	var applied int
	res, err := Replay(path, 0, func(Record) error { applied++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn || res.TornOffset != goodSize || applied != 1 {
		t.Fatalf("replay = %+v, applied = %d", res, applied)
	}
}

func TestFsyncObserver(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	var observed int
	l.FsyncObserver = func(d time.Duration) {
		if d < 0 {
			t.Errorf("negative fsync duration %v", d)
		}
		observed++
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append("m", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if observed != 3 {
		t.Fatalf("observer fired %d times, want 3", observed)
	}
}

// TestGroupCommitBatchesConcurrentCommitters stages records from many
// goroutines and syncs them concurrently: every record must be durable
// and replayable, and the fsync count must come in below one-per-record
// (the whole point of group commit). Stage is serialized here only to
// get deterministic staging; Sync runs fully concurrently.
func TestGroupCommitBatchesConcurrentCommitters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	toks := make([]SyncToken, n)
	var stageMu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stageMu.Lock()
			_, tok, err := l.Stage("m", payload{N: i})
			stageMu.Unlock()
			if err != nil {
				t.Errorf("stage %d: %v", i, err)
				return
			}
			toks[i] = tok
			if err := l.Sync(tok); err != nil {
				t.Errorf("sync %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("Appends = %d, want %d", st.Appends, n)
	}
	if st.Fsyncs >= n {
		t.Fatalf("Fsyncs = %d: no batching happened (want < %d)", st.Fsyncs, n)
	}
	if st.GroupCommitBatches == 0 || st.GroupCommitRecords == 0 {
		t.Fatalf("group-commit stats empty: %+v", st)
	}
	// Re-syncing an already-durable token is a no-op.
	fsyncs := st.Fsyncs
	if err := l.Sync(toks[0]); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Fsyncs; got != fsyncs {
		t.Fatalf("redundant Sync issued an fsync (%d -> %d)", fsyncs, got)
	}
	l.Close()
	var count int
	res, err := Replay(path, 0, func(Record) error { count++; return nil })
	if err != nil || res.Torn || count != n {
		t.Fatalf("replay = %+v, count = %d, err = %v", res, count, err)
	}
}

// TestGroupCommitCheckpointFence: a token staged before a Reset is
// durable through the snapshot the caller published, so its Sync must
// succeed without touching the rotated log.
func TestGroupCommitCheckpointFence(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, 0)
	lsn, tok, err := l.Stage("m", payload{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(tok); err != nil {
		t.Fatalf("sync of checkpointed token = %v, want success no-op", err)
	}
	if st := l.Stats(); st.Appends != 1 || st.Fsyncs != 0 {
		t.Fatalf("stats = %+v, want the pending record counted via the reset, no commit fsync", st)
	}
	if l.Size() != 0 {
		t.Fatalf("size = %d after reset", l.Size())
	}
}

// TestGroupCommitWipeFence: when the leader's commit fails, every staged
// record in the batch is truncated, the follower's Sync reports
// ErrRecordLost, and the consumed LSNs return to the sequence.
func TestGroupCommitWipeFence(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l := openT(t, dir, 0)
	if _, err := l.Append("m", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	_, tok2, err := l.Stage("m", payload{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, tok3, err := l.Stage("m", payload{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk unhappy")
	failpoint.EnableError(failpoint.WALAppendBeforeSync, boom)
	if err := l.Sync(tok3); !errors.Is(err, boom) {
		t.Fatalf("leader sync = %v, want %v", err, boom)
	}
	failpoint.Reset()
	if err := l.Sync(tok2); !errors.Is(err, ErrRecordLost) {
		t.Fatalf("follower sync = %v, want ErrRecordLost", err)
	}
	if st := l.Stats(); st.AppendErrors != 2 || st.Appends != 1 {
		t.Fatalf("stats = %+v, want 2 lost / 1 committed", st)
	}
	// The sequence continues from the durable prefix.
	lsn, err := l.Append("m", payload{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 2 {
		t.Fatalf("post-wipe lsn = %d, want 2", lsn)
	}
	l.Close()
	var lsns []uint64
	res, err := Replay(path, 0, func(r Record) error { lsns = append(lsns, r.LSN); return nil })
	if err != nil || res.Torn || len(lsns) != 2 || lsns[0] != 1 || lsns[1] != 2 {
		t.Fatalf("replay = %+v, lsns = %v, err = %v", res, lsns, err)
	}
}

func TestApplyErrorAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l := openT(t, dir, 0)
	for i := 1; i <= 3; i++ {
		if _, err := l.Append("m", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	boom := errors.New("apply failed")
	_, err := Replay(path, 0, func(r Record) error {
		if r.LSN == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want apply failure", err)
	}
}
