package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrIncompleteTail reports a frame at the end of the log that is not
// fully written yet: a short header, a short payload, or a checksum
// mismatch on the final frame. While the file is being appended
// concurrently (the replication streaming case, as opposed to crash
// recovery) this is the normal race between the writer's two syscalls
// and the reader — the caller retries after the durable frontier
// advances, it never truncates.
var ErrIncompleteTail = errors.New("wal: incomplete frame at tail (still being written)")

// ErrCorrupt reports a frame that can never become valid by appending
// more bytes: an out-of-range length field, a CRC mismatch below the
// caller's durable bound, an unparsable payload, or a non-increasing
// LSN. A tailing reader below the durable frontier treats this as real
// log damage.
var ErrCorrupt = errors.New("wal: corrupt frame")

// ErrRotated reports that the file shrank below the reader's offset: a
// checkpoint truncated the log underneath the tail. The reader's byte
// position is meaningless now; reopen from the start (records already
// delivered are skippable by LSN).
var ErrRotated = errors.New("wal: log rotated under tail reader")

// TailReader incrementally reads framed records from a live WAL file
// that another handle may still be appending to. All reads are
// positional (pread), so a TailReader never disturbs the writer's append
// offset. It is not safe for concurrent use by multiple goroutines.
type TailReader struct {
	f       *os.File
	offset  int64
	prevLSN uint64
	header  [headerBytes]byte
	payload []byte
}

// OpenTail opens the log at path for tailing from its start.
func OpenTail(path string) (*TailReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &TailReader{f: f, payload: make([]byte, 0, 4096)}, nil
}

// Offset returns the byte offset of the next unread frame.
func (t *TailReader) Offset() int64 { return t.offset }

// Close closes the underlying file.
func (t *TailReader) Close() error { return t.f.Close() }

// Next reads the next record. durable bounds how far the log is known to
// be fsynced (the writer's durable frontier; pass -1 when unknown, e.g.
// reading a log no process is appending to): frames beginning at or past
// the bound are never returned — they may still be mid-write — and any
// malformed frame strictly below it is ErrCorrupt rather than
// ErrIncompleteTail, because a durably committed frame can only be
// malformed through damage.
//
// Returns io.EOF cleanly at the readable end, ErrIncompleteTail for a
// partially visible final frame (retry after the frontier advances),
// ErrRotated if the file shrank below the current offset, and ErrCorrupt
// (wrapped with position detail) for unrecoverable damage.
func (t *TailReader) Next(durable int64) (Record, error) {
	bounded := durable >= 0
	if bounded && t.offset >= durable {
		if err := t.checkRotated(); err != nil {
			return Record{}, err
		}
		return Record{}, io.EOF
	}
	incomplete := func() (Record, error) {
		// A short read is either a frame still being written, or the
		// aftermath of a rotation that moved EOF below us; distinguish
		// by size so the caller reopens instead of retrying forever.
		if err := t.checkRotated(); err != nil {
			return Record{}, err
		}
		if bounded {
			// The frontier says these bytes are durable, yet they are
			// not all visible/valid: the frame can never complete.
			return Record{}, fmt.Errorf("%w: torn frame below durable frontier at offset %d", ErrCorrupt, t.offset)
		}
		return Record{}, ErrIncompleteTail
	}

	n, err := t.f.ReadAt(t.header[:], t.offset)
	if err == io.EOF && n == 0 {
		if rerr := t.checkRotated(); rerr != nil {
			return Record{}, rerr
		}
		return Record{}, io.EOF
	}
	if err != nil && err != io.EOF {
		return Record{}, err
	}
	if n < headerBytes {
		return incomplete()
	}
	length := binary.LittleEndian.Uint32(t.header[0:4])
	sum := binary.LittleEndian.Uint32(t.header[4:8])
	if length == 0 || length > maxRecordBytes {
		return Record{}, fmt.Errorf("%w: invalid length %d at offset %d", ErrCorrupt, length, t.offset)
	}
	end := t.offset + int64(headerBytes) + int64(length)
	if bounded && end > durable {
		// The frame extends past the durable frontier: whatever bytes
		// are visible, it is not committed yet.
		return Record{}, ErrIncompleteTail
	}
	if cap(t.payload) < int(length) {
		t.payload = make([]byte, length)
	}
	t.payload = t.payload[:length]
	if n, err := t.f.ReadAt(t.payload, t.offset+headerBytes); err != nil || n < int(length) {
		if err != nil && err != io.EOF {
			return Record{}, err
		}
		return incomplete()
	}
	if crc32.ChecksumIEEE(t.payload) != sum {
		if !bounded {
			// The payload bytes may still be landing in a concurrent
			// append — but only for the final frame. A mismatching frame
			// with bytes after it was finished by the writer and then
			// damaged.
			st, serr := t.f.Stat()
			if serr != nil {
				return Record{}, serr
			}
			if st.Size() <= end {
				return Record{}, ErrIncompleteTail
			}
		}
		return Record{}, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, t.offset)
	}
	var rec Record
	if err := json.Unmarshal(t.payload, &rec); err != nil {
		return Record{}, fmt.Errorf("%w: unparsable payload at offset %d: %v", ErrCorrupt, t.offset, err)
	}
	if rec.LSN <= t.prevLSN {
		return Record{}, fmt.Errorf("%w: LSN %d at offset %d does not advance past %d", ErrCorrupt, rec.LSN, t.offset, t.prevLSN)
	}
	t.prevLSN = rec.LSN
	t.offset = end
	return rec, nil
}

// checkRotated stats the file and reports ErrRotated if it shrank below
// the reader's position.
func (t *TailReader) checkRotated() error {
	st, err := t.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < t.offset {
		return ErrRotated
	}
	return nil
}
