// Package wal is the engine's write-ahead log: an append-only file of
// length+CRC32-framed, fsync-on-commit records describing logical
// mutations. Together with periodic snapshots it makes the mutation path
// crash-safe — on startup the engine loads the latest snapshot and
// replays the WAL tail, truncating cleanly at the first torn or corrupt
// record.
//
// On-disk format, per record:
//
//	4 bytes  little-endian uint32: payload length
//	4 bytes  little-endian uint32: IEEE CRC32 of the payload
//	n bytes  payload: one JSON-encoded Record
//
// Records carry a strictly increasing LSN. A snapshot remembers the LSN
// it includes; replay skips records at or below it, which makes a crash
// between "snapshot published" and "log reset" harmless (the stale prefix
// is skipped, never double-applied).
//
// Durability contract: Append returns only after the record is fsynced,
// so an acknowledged mutation survives a process kill. A failed append
// rolls the file back to its pre-append size so the log is never
// poisoned by its own error paths; the injected-crash failpoint is the
// deliberate exception, leaving a torn record for recovery to handle.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"insightnotes/internal/failpoint"
)

const headerBytes = 8

// maxRecordBytes bounds a single record; a length field above it marks
// the frame — and everything after it — as corrupt.
const maxRecordBytes = 64 << 20

// ErrLogDead marks a log killed by a simulated crash-stop: the handle
// refuses further appends, as a dead process would.
var ErrLogDead = errors.New("wal: log is dead after simulated crash")

// Record is one logical mutation in the log.
type Record struct {
	// LSN is the record's log sequence number, strictly increasing.
	LSN uint64 `json:"lsn"`
	// Type names the logical mutation (the engine defines the set).
	Type string `json:"type"`
	// Data is the type-specific payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// Stats are cumulative counters of one Log handle.
type Stats struct {
	Appends      int64 // records committed
	AppendErrors int64 // appends that failed (including injected faults)
	BytesWritten int64 // framed bytes committed
	Fsyncs       int64 // fsync calls issued
	Resets       int64 // checkpoint truncations
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	// FsyncObserver, when set (before the first Append), receives the
	// duration of every commit fsync — the engine feeds it into the
	// insightnotes_wal_fsync_seconds histogram.
	FsyncObserver func(time.Duration)

	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64
	lastLSN uint64
	dead    bool
	stats   Stats
}

// Open opens (creating if needed) the log at path for appending.
// lastLSN seeds the sequence: the next record gets lastLSN+1. Callers
// recover the value by replaying the log first (see Replay).
func Open(path string, lastLSN uint64) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, path: path, size: st.Size(), lastLSN: lastLSN}, nil
}

// frame builds the on-disk bytes of one record.
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding record: %w", err)
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerBytes:], payload)
	return buf, nil
}

// Append commits one record: frame, write, fsync, in that order. It
// returns the record's LSN. On error nothing is durably appended — the
// file is rolled back to its pre-append size — except under an injected
// crash-stop, which deliberately leaves a torn record and kills the
// handle.
func (l *Log) Append(recType string, data any) (uint64, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return 0, fmt.Errorf("wal: encoding %s payload: %w", recType, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return 0, ErrLogDead
	}
	buf, err := frame(Record{LSN: l.lastLSN + 1, Type: recType, Data: raw})
	if err != nil {
		return 0, err
	}
	if err := l.commitLocked(buf); err != nil {
		l.stats.AppendErrors++
		return 0, err
	}
	l.lastLSN++
	l.size += int64(len(buf))
	l.stats.Appends++
	l.stats.BytesWritten += int64(len(buf))
	return l.lastLSN, nil
}

// commitLocked writes and fsyncs one frame, evaluating the append-path
// failpoints. Callers hold l.mu.
func (l *Log) commitLocked(buf []byte) error {
	if err := failpoint.Eval(failpoint.WALAppendBefore); err != nil {
		return err
	}
	if err := failpoint.Eval(failpoint.WALAppendPartial); err != nil {
		if failpoint.IsCrash(err) {
			// Crash-stop mid-write: a prefix of the frame reaches the
			// file and the process "dies". Recovery must truncate this.
			l.f.Write(buf[:len(buf)/2])
			l.dead = true
		}
		return err
	}
	if _, err := l.f.Write(buf); err != nil {
		l.rollbackLocked()
		return fmt.Errorf("wal: append write: %w", err)
	}
	if err := failpoint.Eval(failpoint.WALAppendBeforeSync); err != nil {
		if failpoint.IsCrash(err) {
			l.dead = true
			return err
		}
		// Unsynced bytes are not durable; roll them back so the
		// in-memory size stays truthful.
		l.rollbackLocked()
		return err
	}
	start := time.Now()
	err := l.f.Sync()
	l.stats.Fsyncs++
	if obs := l.FsyncObserver; obs != nil {
		obs(time.Since(start))
	}
	if err != nil {
		l.rollbackLocked()
		return fmt.Errorf("wal: commit fsync: %w", err)
	}
	return nil
}

// rollbackLocked best-effort truncates the file back to the last
// committed size after a failed append.
func (l *Log) rollbackLocked() {
	_ = l.f.Truncate(l.size)
}

// Reset truncates the log to empty after a checkpoint. The sequence
// continues: lastLSN seeds the next record's LSN, so post-checkpoint
// records stay above the snapshot's LSN.
func (l *Log) Reset(lastLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return ErrLogDead
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset truncate: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset fsync: %w", err)
	}
	l.size = 0
	l.lastLSN = lastLSN
	l.stats.Resets++
	return nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// LastLSN returns the LSN of the last committed record.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// Stats returns a copy of the cumulative counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ReplayResult reports what a replay pass found.
type ReplayResult struct {
	// Replayed counts records applied (LSN above afterLSN).
	Replayed int
	// Skipped counts records at or below afterLSN (already captured by
	// the snapshot being recovered from).
	Skipped int
	// LastLSN is the highest LSN seen (0 when the log is empty).
	LastLSN uint64
	// Torn reports that the log ended in a torn or corrupt record, which
	// was truncated away at TornOffset.
	Torn       bool
	TornOffset int64
}

// Replay reads the log at path, calling apply for every intact record
// with LSN > afterLSN. It stops at the first torn or corrupt frame —
// short header, short payload, CRC mismatch, unparsable payload, or
// non-increasing LSN — truncates the file there, and reports it. A
// missing file is an empty log. An apply error aborts the replay: a
// CRC-valid record that fails to apply means real corruption above the
// framing layer, and silently dropping committed mutations would be
// worse than refusing to start.
func Replay(path string, afterLSN uint64, apply func(Record) error) (ReplayResult, error) {
	var res ReplayResult
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, err
	}
	defer f.Close()

	var offset int64
	header := make([]byte, headerBytes)
	payload := make([]byte, 0, 4096)
	prevLSN := uint64(0)
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			if err == io.EOF {
				return res, nil // clean end
			}
			break // partial header: torn
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordBytes {
			break // corrupt length field
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			break // short payload: torn
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt payload
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // CRC-valid but unparsable: treat as corrupt tail
		}
		if rec.LSN <= prevLSN {
			break // sequence violation: corrupt tail
		}
		if rec.LSN <= afterLSN {
			res.Skipped++
		} else {
			if err := apply(rec); err != nil {
				return res, fmt.Errorf("wal: applying record lsn=%d type=%s: %w", rec.LSN, rec.Type, err)
			}
			res.Replayed++
		}
		prevLSN = rec.LSN
		res.LastLSN = rec.LSN
		offset += int64(headerBytes) + int64(length)
	}
	// Torn or corrupt tail: drop it so the next append starts on a clean
	// frame boundary.
	res.Torn = true
	res.TornOffset = offset
	if err := f.Truncate(offset); err != nil {
		return res, fmt.Errorf("wal: truncating torn tail at %d: %w", offset, err)
	}
	if err := f.Sync(); err != nil {
		return res, fmt.Errorf("wal: syncing truncated log: %w", err)
	}
	return res, nil
}
