// Package wal is the engine's write-ahead log: an append-only file of
// length+CRC32-framed, fsync-on-commit records describing logical
// mutations. Together with periodic snapshots it makes the mutation path
// crash-safe — on startup the engine loads the latest snapshot and
// replays the WAL tail, truncating cleanly at the first torn or corrupt
// record.
//
// On-disk format, per record:
//
//	4 bytes  little-endian uint32: payload length
//	4 bytes  little-endian uint32: IEEE CRC32 of the payload
//	n bytes  payload: one JSON-encoded Record
//
// Records carry a strictly increasing LSN. A snapshot remembers the LSN
// it includes; replay skips records at or below it, which makes a crash
// between "snapshot published" and "log reset" harmless (the stale prefix
// is skipped, never double-applied).
//
// Durability contract: Append returns only after the record is fsynced,
// so an acknowledged mutation survives a process kill. A failed append
// rolls the file back to its last durable size so the log is never
// poisoned by its own error paths; the injected-crash failpoint is the
// deliberate exception, leaving a torn record for recovery to handle.
//
// Group commit: Append is split into Stage (serialize the frame into the
// file under the short staging lock) and Sync (make every staged byte up
// to the caller's token durable). Concurrent committers stage
// independently, then the first one into Sync becomes the batch leader
// and issues a single fsync that covers everyone staged so far; the
// followers observe that their bytes are already durable and return
// without touching the disk. Under a serial writer this degrades to
// exactly the old fsync-per-append behavior.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"insightnotes/internal/failpoint"
)

const headerBytes = 8

// maxCommitWindowYields bounds the group-commit window: the batch leader
// yields at most this many times while committers keep staging behind
// it, then fsyncs whatever accumulated.
const maxCommitWindowYields = 16

// maxRecordBytes bounds a single record; a length field above it marks
// the frame — and everything after it — as corrupt.
const maxRecordBytes = 64 << 20

// ErrLogDead marks a log killed by a simulated crash-stop: the handle
// refuses further appends, as a dead process would.
var ErrLogDead = errors.New("wal: log is dead after simulated crash")

// ErrRecordLost reports that a staged record was truncated away because
// the group-commit fsync covering it failed. The caller's mutation is
// not durable and the statement must be reported failed.
var ErrRecordLost = errors.New("wal: record lost to a failed group commit")

// Record is one logical mutation in the log.
type Record struct {
	// LSN is the record's log sequence number, strictly increasing.
	LSN uint64 `json:"lsn"`
	// Type names the logical mutation (the engine defines the set).
	Type string `json:"type"`
	// Data is the type-specific payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// Stats are cumulative counters of one Log handle.
type Stats struct {
	Appends      int64 // records committed
	AppendErrors int64 // appends that failed (including injected faults)
	BytesWritten int64 // framed bytes committed
	Fsyncs       int64 // fsync calls issued
	Resets       int64 // checkpoint truncations

	// Group commit: GroupCommitBatches counts commit fsyncs that made at
	// least one record durable; GroupCommitRecords counts records that
	// shared their commit fsync with at least one other record. A serial
	// workload shows Batches == Appends and Records == 0; the gap between
	// Appends and Batches is the fsyncs saved by batching.
	GroupCommitBatches int64
	GroupCommitRecords int64
}

// SyncToken identifies a staged-but-not-yet-durable position in the log.
// Stage returns one; passing it to Sync blocks until every byte up to
// that position is durable (possibly via another committer's fsync). The
// zero token is valid and syncs nothing.
type SyncToken struct {
	end     int64  // staged byte offset this token's record ends at
	ckptGen uint64 // checkpoint generation the token was staged in
	wipeGen uint64 // failure-truncation generation the token was staged in
	ok      bool
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	// FsyncObserver, when set (before the first Append), receives the
	// duration of every commit fsync — the engine feeds it into the
	// insightnotes_wal_fsync_seconds histogram.
	FsyncObserver func(time.Duration)

	mu      sync.Mutex
	f       *os.File
	path    string
	synced  int64 // durable byte size (everything at or below is fsynced)
	written int64 // staged byte size (synced..written awaits a commit fsync)
	// stagedRecs / syncedRecs are cumulative record counts mirroring
	// written / synced; their difference is the pending batch size.
	stagedRecs int64
	syncedRecs int64
	lastLSN    uint64
	dead       bool
	stats      Stats
	// syncing is true while a batch leader's fsync is in flight; syncCond
	// (on mu) is broadcast whenever the durable frontier moves — commit,
	// wipe, reset, death — so every waiting follower re-checks at once
	// instead of draining through a mutex one per fsync.
	syncing  bool
	syncCond *sync.Cond
	// ckptGen bumps on Reset: a pending token from before the rotation is
	// already durable via the snapshot, so its Sync is a success no-op.
	ckptGen uint64
	// wipeGen bumps when a failed commit truncates the staged tail: a
	// pending token from before the wipe has lost its bytes, so its Sync
	// reports ErrRecordLost.
	wipeGen uint64
	// subs are durable-frontier subscribers (see SubscribeDurable): each
	// gets a non-blocking wakeup whenever the frontier moves, the log
	// rotates, or the handle dies.
	subs []chan struct{}
	// baseLSN is a position known to be covered outside this file:
	// records at or below it may be absent (truncated by rotation, or
	// subsumed by the snapshot an empty log was opened against). Exact
	// after Reset and after opening an empty file; 0 (no claim) when a
	// non-empty file is reopened, where the first record's LSN carries
	// the same information. The replication sender uses it to decide
	// when a replica's resume position predates the log.
	baseLSN uint64
}

// Open opens (creating if needed) the log at path for appending.
// lastLSN seeds the sequence: the next record gets lastLSN+1. Callers
// recover the value by replaying the log first (see Replay).
func Open(path string, lastLSN uint64) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{f: f, path: path, synced: st.Size(), written: st.Size(), lastLSN: lastLSN}
	if st.Size() == 0 {
		l.baseLSN = lastLSN
	}
	l.syncCond = sync.NewCond(&l.mu)
	return l, nil
}

// frame builds the on-disk bytes of one record.
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding record: %w", err)
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerBytes:], payload)
	return buf, nil
}

// Append commits one record: frame, write, fsync, in that order. It
// returns the record's LSN. On error nothing is durably appended — the
// file is rolled back to its last durable size — except under an
// injected crash-stop, which deliberately leaves a torn record and kills
// the handle. Equivalent to Stage followed by Sync; concurrent callers
// that want to share fsyncs call the two halves themselves with their
// own serialization in between (the engine stages under its statement
// lock and syncs after releasing it).
func (l *Log) Append(recType string, data any) (uint64, error) {
	lsn, tok, err := l.Stage(recType, data)
	if err != nil {
		return 0, err
	}
	if err := l.Sync(tok); err != nil {
		return 0, err
	}
	return lsn, nil
}

// Stage assigns the next LSN and writes the framed record into the file
// without syncing it. The record is NOT durable until a Sync covering
// the returned token completes. On error nothing is staged and no LSN is
// consumed (except the injected mid-write crash, which leaves a torn
// prefix and kills the handle).
func (l *Log) Stage(recType string, data any) (uint64, SyncToken, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return 0, SyncToken{}, fmt.Errorf("wal: encoding %s payload: %w", recType, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return 0, SyncToken{}, ErrLogDead
	}
	buf, err := frame(Record{LSN: l.lastLSN + 1, Type: recType, Data: raw})
	if err != nil {
		return 0, SyncToken{}, err
	}
	if err := failpoint.Eval(failpoint.WALAppendBefore); err != nil {
		l.stats.AppendErrors++
		return 0, SyncToken{}, err
	}
	if err := failpoint.Eval(failpoint.WALAppendPartial); err != nil {
		if failpoint.IsCrash(err) {
			// Crash-stop mid-write: a prefix of the frame reaches the
			// file and the process "dies". Recovery must truncate this.
			l.f.Write(buf[:len(buf)/2])
			l.dead = true
			l.notifyDurableLocked()
		}
		l.stats.AppendErrors++
		return 0, SyncToken{}, err
	}
	if _, err := l.f.Write(buf); err != nil {
		// Roll back just this frame; earlier staged-but-unsynced frames
		// from concurrent committers stay in place.
		_ = l.f.Truncate(l.written)
		l.stats.AppendErrors++
		return 0, SyncToken{}, fmt.Errorf("wal: append write: %w", err)
	}
	l.lastLSN++
	l.written += int64(len(buf))
	l.stagedRecs++
	tok := SyncToken{end: l.written, ckptGen: l.ckptGen, wipeGen: l.wipeGen, ok: true}
	return l.lastLSN, tok, nil
}

// StageRecord stages a record whose LSN was assigned elsewhere — the
// replication apply path, where a replica persists the primary's records
// into its own log under the primary's LSNs so a restart resumes from the
// exact position it last made durable. rec.LSN must exceed the last
// staged LSN; gaps are allowed (a snapshot resync jumps the sequence
// forward). Durability follows the usual Stage/Sync contract. Note the
// failed-commit wipe assumes a dense LSN sequence when returning LSNs to
// the pool; a replica that loses a group commit must treat its log handle
// as poisoned and resync rather than restage (the receiver does).
func (l *Log) StageRecord(rec Record) (SyncToken, error) {
	if rec.LSN == 0 {
		return SyncToken{}, fmt.Errorf("wal: staging record with zero LSN")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return SyncToken{}, ErrLogDead
	}
	if rec.LSN <= l.lastLSN {
		return SyncToken{}, fmt.Errorf("wal: staging stale record lsn=%d (last staged %d)", rec.LSN, l.lastLSN)
	}
	buf, err := frame(rec)
	if err != nil {
		return SyncToken{}, err
	}
	if _, err := l.f.Write(buf); err != nil {
		_ = l.f.Truncate(l.written)
		l.stats.AppendErrors++
		return SyncToken{}, fmt.Errorf("wal: append write: %w", err)
	}
	l.lastLSN = rec.LSN
	l.written += int64(len(buf))
	l.stagedRecs++
	return SyncToken{end: l.written, ckptGen: l.ckptGen, wipeGen: l.wipeGen, ok: true}, nil
}

// Sync makes every byte staged at or before tok durable. The first
// committer in becomes the batch leader and fsyncs once for everyone
// staged so far; later committers covered by that fsync return without
// touching the disk. A token superseded by a checkpoint rotation is a
// success no-op (the snapshot already made it durable); a token whose
// bytes were truncated by a failed commit reports ErrRecordLost.
func (l *Log) Sync(tok SyncToken) error {
	if !tok.ok {
		return nil
	}
	l.mu.Lock()
	for {
		switch {
		case tok.ckptGen != l.ckptGen:
			l.mu.Unlock()
			return nil
		case tok.wipeGen != l.wipeGen:
			l.mu.Unlock()
			return ErrRecordLost
		case tok.end <= l.synced:
			l.mu.Unlock()
			return nil
		case l.dead:
			l.mu.Unlock()
			return ErrLogDead
		}
		if !l.syncing {
			break
		}
		// A leader's fsync is in flight; wait for the broadcast and
		// re-check — if it covers us we return without ever touching
		// the disk, otherwise we contend to lead the next batch.
		l.syncCond.Wait()
	}
	l.syncing = true
	staged := l.stagedRecs
	l.mu.Unlock()
	// Commit window: before capturing the batch boundary, yield while
	// concurrent committers are still staging behind us — on few-core
	// hosts a leader that goes straight into the blocking fsync syscall
	// would otherwise keep the CPU away from them until sysmon retakes
	// the P, and batches collapse to size one. The window closes as soon
	// as staging stops making progress, so a serial committer pays one
	// no-op yield (nanoseconds) and nothing ever waits on a timer.
	for i := 0; i < maxCommitWindowYields; i++ {
		runtime.Gosched()
		l.mu.Lock()
		n := l.stagedRecs
		l.mu.Unlock()
		if n == staged {
			break
		}
		staged = n
	}
	l.mu.Lock()
	if l.dead {
		l.finishSyncLocked()
		l.mu.Unlock()
		return ErrLogDead
	}
	if err := failpoint.Eval(failpoint.WALAppendBeforeSync); err != nil {
		if failpoint.IsCrash(err) {
			l.dead = true
		} else {
			// Unsynced bytes are not durable; roll them back so the
			// staged state stays truthful. Committers waiting on the
			// same batch observe the wipe and fail too.
			l.wipeLocked()
		}
		l.finishSyncLocked()
		l.mu.Unlock()
		return err
	}
	// Capture the batch boundary, then fsync outside l.mu so new
	// committers can keep staging into the next batch meanwhile.
	target, targetRecs := l.written, l.stagedRecs
	l.mu.Unlock()

	start := time.Now()
	err := l.f.Sync()
	elapsed := time.Since(start)

	l.mu.Lock()
	l.stats.Fsyncs++
	if err != nil {
		l.wipeLocked()
		l.finishSyncLocked()
		l.mu.Unlock()
		return fmt.Errorf("wal: commit fsync: %w", err)
	}
	batch := targetRecs - l.syncedRecs
	l.stats.Appends += batch
	l.stats.BytesWritten += target - l.synced
	l.stats.GroupCommitBatches++
	if batch > 1 {
		l.stats.GroupCommitRecords += batch
	}
	l.synced, l.syncedRecs = target, targetRecs
	l.finishSyncLocked()
	obs := l.FsyncObserver
	l.mu.Unlock()
	if obs != nil {
		obs(elapsed)
	}
	return nil
}

// finishSyncLocked ends the current leader's term and wakes every
// waiting follower to re-check the durable frontier. Callers hold l.mu.
func (l *Log) finishSyncLocked() {
	l.syncing = false
	l.syncCond.Broadcast()
	l.notifyDurableLocked()
}

// notifyDurableLocked wakes durable-frontier subscribers without ever
// blocking: a subscriber with a pending wakeup already has all the
// information a second one would carry. Callers hold l.mu.
func (l *Log) notifyDurableLocked() {
	for _, ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// SubscribeDurable registers ch for a wakeup whenever the durable
// frontier may have moved: a commit fsync completed (or failed), the log
// rotated under a checkpoint, or the handle died. ch should have capacity
// 1; notifications are collapsed, never blocked on. The replication
// sender uses this to tail the log without polling.
func (l *Log) SubscribeDurable(ch chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subs = append(l.subs, ch)
}

// UnsubscribeDurable removes ch from the subscriber list.
func (l *Log) UnsubscribeDurable(ch chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, c := range l.subs {
		if c == ch {
			l.subs = append(l.subs[:i], l.subs[i+1:]...)
			break
		}
	}
}

// DurableFrontier reports the durable byte size of the log, the
// checkpoint generation it belongs to, and whether the handle is dead. A
// tailing reader may safely interpret any malformed frame strictly below
// the frontier as corruption; at or beyond it, a malformed frame is just
// a write in progress. A generation change since the last observation
// means the file was rotated and byte offsets no longer line up — the
// reader must reopen from the start.
func (l *Log) DurableFrontier() (size int64, ckptGen uint64, dead bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced, l.ckptGen, l.dead
}

// Kill marks the handle dead as a simulated crash-stop would: further
// appends fail with ErrLogDead, pending syncs drain with the same error,
// and subscribers are woken. The file is left exactly as the crash found
// it. Replication crash tests use this to model a replica process dying
// mid-apply.
func (l *Log) Kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dead = true
	l.syncCond.Broadcast()
	l.notifyDurableLocked()
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// BaseLSN reports the position known to be covered outside the log file
// (see the field doc): a replica resuming from at or above it can be
// served from the file alone; one below it may be missing records and
// needs a snapshot resync. 0 means "no claim" (non-empty file reopened
// after a restart), where the first record's LSN decides instead.
func (l *Log) BaseLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.baseLSN
}

// wipeLocked truncates the staged-but-unsynced tail after a failed
// commit, rolling back every record in it: the consumed LSNs are
// returned to the sequence (nothing above l.synced survives, so no later
// record holds them) and pending committers are fenced off via wipeGen.
// Callers hold l.mu.
func (l *Log) wipeLocked() {
	_ = l.f.Truncate(l.synced)
	lost := l.stagedRecs - l.syncedRecs
	l.stats.AppendErrors += lost
	l.lastLSN -= uint64(lost)
	l.stagedRecs = l.syncedRecs
	l.written = l.synced
	l.wipeGen++
}

// Reset truncates the log to empty after a checkpoint. The sequence
// continues: lastLSN seeds the next record's LSN, so post-checkpoint
// records stay above the snapshot's LSN. Records staged but not yet
// synced at reset time are durable through the snapshot the caller just
// published, so their pending Sync calls turn into success no-ops
// (fenced by the checkpoint generation).
func (l *Log) Reset(lastLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Wait out an in-flight commit fsync: rotating the file under it
	// would commit bytes of a log that no longer exists.
	for l.syncing {
		l.syncCond.Wait()
	}
	if l.dead {
		return ErrLogDead
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset truncate: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset fsync: %w", err)
	}
	// Pending staged records were committed by the snapshot rather than a
	// log fsync; count them so Appends still means "records made durable".
	l.stats.Appends += l.stagedRecs - l.syncedRecs
	l.stats.BytesWritten += l.written - l.synced
	l.synced, l.written = 0, 0
	l.syncedRecs = l.stagedRecs
	l.lastLSN = lastLSN
	l.baseLSN = lastLSN
	l.ckptGen++
	l.stats.Resets++
	// Followers waiting on pre-rotation tokens observe the generation
	// bump and return success (their records are in the snapshot).
	l.syncCond.Broadcast()
	l.notifyDurableLocked()
	return nil
}

// Size returns the current log size in bytes (staged, including bytes
// awaiting their commit fsync).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// LastLSN returns the LSN of the last committed record.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// Stats returns a copy of the cumulative counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ReplayResult reports what a replay pass found.
type ReplayResult struct {
	// Replayed counts records applied (LSN above afterLSN).
	Replayed int
	// Skipped counts records at or below afterLSN (already captured by
	// the snapshot being recovered from).
	Skipped int
	// LastLSN is the highest LSN seen (0 when the log is empty).
	LastLSN uint64
	// Torn reports that the log ended in a torn or corrupt record, which
	// was truncated away at TornOffset.
	Torn       bool
	TornOffset int64
}

// Replay reads the log at path, calling apply for every intact record
// with LSN > afterLSN. It stops at the first torn or corrupt frame —
// short header, short payload, CRC mismatch, unparsable payload, or
// non-increasing LSN — truncates the file there, and reports it. A
// missing file is an empty log. An apply error aborts the replay: a
// CRC-valid record that fails to apply means real corruption above the
// framing layer, and silently dropping committed mutations would be
// worse than refusing to start.
func Replay(path string, afterLSN uint64, apply func(Record) error) (ReplayResult, error) {
	var res ReplayResult
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, err
	}
	defer f.Close()

	var offset int64
	header := make([]byte, headerBytes)
	payload := make([]byte, 0, 4096)
	prevLSN := uint64(0)
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			if err == io.EOF {
				return res, nil // clean end
			}
			break // partial header: torn
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordBytes {
			break // corrupt length field
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			break // short payload: torn
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt payload
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // CRC-valid but unparsable: treat as corrupt tail
		}
		if rec.LSN <= prevLSN {
			break // sequence violation: corrupt tail
		}
		if rec.LSN <= afterLSN {
			res.Skipped++
		} else {
			if err := apply(rec); err != nil {
				return res, fmt.Errorf("wal: applying record lsn=%d type=%s: %w", rec.LSN, rec.Type, err)
			}
			res.Replayed++
		}
		prevLSN = rec.LSN
		res.LastLSN = rec.LSN
		offset += int64(headerBytes) + int64(length)
	}
	// Torn or corrupt tail: drop it so the next append starts on a clean
	// frame boundary.
	res.Torn = true
	res.TornOffset = offset
	if err := f.Truncate(offset); err != nil {
		return res, fmt.Errorf("wal: truncating torn tail at %d: %w", offset, err)
	}
	if err := f.Sync(); err != nil {
		return res, fmt.Errorf("wal: syncing truncated log: %w", err)
	}
	return res, nil
}
