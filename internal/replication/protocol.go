// Package replication ships the primary's WAL to read replicas over a
// TCP stream and keeps every replica's staleness bounded and observable.
//
// Topology and flow:
//
//	primary engine ──commit──▶ wal.log ◀──tail── Sender ══TCP══▶ Receiver ──apply──▶ replica engine
//	                                                 ▲                │
//	                                                 └──── acks ──────┘
//
// The Sender sits entirely off the commit path: it tails the primary's
// WAL file up to the durable frontier (never shipping bytes an fsync has
// not covered) and streams records to each connected replica, tracking
// per-replica acknowledged LSNs for lag accounting. A replica that falls
// behind a rotated WAL — its resume position predates the log — is
// shed-and-resynced with a full snapshot instead of blocking the
// primary. The Receiver dials the primary, resumes from the last LSN its
// own WAL made durable, applies records through the engine's recovery
// redo path, and persists them locally before acknowledging, so a
// crash-restart cycle loses nothing and re-applies nothing.
//
// Staleness is explicit: every record and heartbeat carries the
// primary's tip LSN; the Receiver derives a lag (LSNs and wall time) that
// the server layer attaches to every replica-served response and
// enforces as a hard bound (-max-staleness) by shedding reads with a
// structured STALE error.
package replication

import (
	"bytes"
	"encoding/json"
	"hash/crc32"

	"insightnotes/internal/wal"
)

// castagnoli is the CRC32-C table snapshot payloads are summed with — the
// same polynomial the storage layer stamps pages with, so a snapshot is
// integrity-checked end to end: serialized on the primary, checked on the
// wire, re-checked before installation or page repair.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// snapshotCRC sums a raw snapshot document for the msgSnapshot CRC field.
func snapshotCRC(raw []byte) uint32 { return crc32.Checksum(raw, castagnoli) }

// compactSnapshot canonicalizes a snapshot document to its compact JSON
// form — the form json.Marshal emits for a RawMessage — so the CRC the
// sender sums is over exactly the bytes the receiver decodes.
func compactSnapshot(raw []byte) []byte {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return raw
	}
	return buf.Bytes()
}

// Message types of the replication stream. The stream is a sequence of
// JSON values in each direction: primary→replica carries records,
// snapshots, and heartbeats; replica→primary carries one hello followed
// by acks.
const (
	// msgHello opens a session (replica→primary): FromLSN is the last
	// LSN the replica's own WAL holds durably, i.e. resume streaming at
	// FromLSN+1.
	msgHello = "hello"
	// msgRecord carries one committed WAL record (primary→replica).
	// TipLSN rides along so the replica can measure its lag without a
	// separate channel.
	msgRecord = "record"
	// msgSnapshot carries a full-state snapshot (primary→replica) when
	// the replica's position predates the primary's log (shed-and-resync
	// after WAL rotation). LSN is the snapshot's position; streaming
	// continues from LSN+1.
	msgSnapshot = "snapshot"
	// msgHeartbeat is sent when the stream is idle (primary→replica) so
	// replicas can keep their staleness measure fresh; TipLSN is the
	// primary's current position.
	msgHeartbeat = "heartbeat"
	// msgAck reports durable application (replica→primary): LSN is the
	// highest record the replica has applied and made locally durable.
	msgAck = "ack"
)

// message is one frame of the replication stream in either direction.
type message struct {
	Type string `json:"type"`
	// FromLSN is the resume position (msgHello).
	FromLSN uint64 `json:"from_lsn,omitempty"`
	// WantSnapshot (msgHello) requests a one-shot full snapshot instead of
	// a record stream: the sender ships one msgSnapshot and closes. The
	// scrubber's page-repair fetch (FetchSnapshot) uses it.
	WantSnapshot bool `json:"want_snapshot,omitempty"`
	// CRC is the CRC32-C of the Snapshot bytes (msgSnapshot); receivers
	// verify it before installing or repairing from the payload.
	CRC uint32 `json:"crc,omitempty"`
	// LSN is the acked position (msgAck) or the snapshot position
	// (msgSnapshot).
	LSN uint64 `json:"lsn,omitempty"`
	// TipLSN is the primary's last committed LSN at send time
	// (msgRecord, msgSnapshot, msgHeartbeat).
	TipLSN uint64 `json:"tip_lsn,omitempty"`
	// Record is the shipped record (msgRecord).
	Record *wal.Record `json:"record,omitempty"`
	// Snapshot is the raw snapshot document (msgSnapshot), exactly the
	// bytes engine.InstallReplicaSnapshot accepts.
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}
