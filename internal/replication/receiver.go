package replication

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/failpoint"
	"insightnotes/internal/metrics"
	"insightnotes/internal/server"
	"insightnotes/internal/trace"
	"insightnotes/internal/wal"
)

// ReceiverConfig tunes the replica-side stream applier. PrimaryAddr is
// required; the rest defaults at NewReceiver.
type ReceiverConfig struct {
	// PrimaryAddr is the primary's replication listener (-replicate-from).
	PrimaryAddr string
	// MaxStaleness is the hard bound on how stale this replica may serve
	// reads: once the lag exceeds it, Staleness reports stale and the
	// server sheds reads with a structured STALE error until the replica
	// catches back up. 0 means serve regardless of lag.
	MaxStaleness time.Duration
	// Backoff paces reconnect attempts (capped exponential with jitter;
	// zero value uses the server package defaults).
	Backoff server.Backoff
	// Dial replaces net.Dial for the replication connection — the chaos
	// harness injects failpoint-driven flaky conns here.
	Dial func(addr string) (net.Conn, error)
	// BatchMax bounds how many records accumulate before an apply+fsync
	// (default 128). Larger batches amortize the replica's commit fsync
	// when the stream runs hot.
	BatchMax int
}

// Receiver follows a primary's replication stream: it resumes from the
// last LSN its own WAL holds durably, applies shipped records through
// the engine's recovery redo path (persisting them locally before
// acknowledging), installs full snapshots when the primary sheds it for
// falling behind a rotated WAL, and maintains the explicit staleness
// measure the server attaches to every replica-served read.
//
// It implements server.ReplicaSource.
type Receiver struct {
	db  *engine.DB
	cfg ReceiverConfig

	stop    chan struct{}
	wg      sync.WaitGroup
	tip     atomic.Uint64 // primary's last-announced position
	applied atomic.Uint64 // highest LSN applied and durable locally
	dead    atomic.Bool   // simulated crash-stop (failpoint); stops the loop

	mu      sync.Mutex
	conn    net.Conn  // live connection, for Shutdown to sever
	freshAt time.Time // last instant applied had caught up with tip

	recordsApplied *metrics.Counter
	applyErrors    *metrics.Counter
	resyncs        *metrics.Counter
	reconnects     *metrics.Counter
}

// NewReceiver builds a receiver for db, which must be durable (the
// replica persists the stream into its own WAL). Call Start to begin
// following the primary.
func NewReceiver(db *engine.DB, cfg ReceiverConfig) (*Receiver, error) {
	if db.WAL() == nil {
		return nil, errors.New("replication: receiver requires a durable engine (-data-dir)")
	}
	if cfg.PrimaryAddr == "" {
		return nil, errors.New("replication: receiver requires a primary address")
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 128
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	r := &Receiver{db: db, cfg: cfg, stop: make(chan struct{})}
	pos := db.ReplicationPosition()
	r.applied.Store(pos)
	r.tip.Store(pos)
	r.markFresh() // staleness clock starts at construction
	if reg := db.Metrics(); reg != nil {
		r.recordsApplied = reg.Counter(metrics.NameReplRecordsAppliedTotal,
			"Replicated WAL records applied and made durable locally.")
		r.applyErrors = reg.Counter(metrics.NameReplApplyErrorsTotal,
			"Replicated batches that failed to apply.")
		r.resyncs = reg.Counter(metrics.NameReplResyncsTotal,
			"Full-snapshot resyncs installed after falling behind a rotated primary WAL.")
		r.reconnects = reg.Counter(metrics.NameReplReconnectsTotal,
			"Reconnect attempts to the primary after a lost or refused replication connection.")
		reg.GaugeFunc(metrics.NameReplLagRecords,
			"Replication lag in records: primary tip LSN minus highest locally applied LSN.",
			func() float64 {
				lagLSN, _, _ := r.Staleness()
				return float64(lagLSN)
			})
		reg.GaugeFunc(metrics.NameReplLagSeconds,
			"Replication staleness in seconds: age of the last caught-up contact with the primary.",
			func() float64 {
				_, lag, _ := r.Staleness()
				return lag.Seconds()
			})
	}
	return r, nil
}

// Start launches the follow loop: dial, stream, apply; reconnect with
// capped backoff on any failure, resuming from the local WAL position.
func (r *Receiver) Start() {
	r.wg.Add(1)
	go r.run()
}

// Dead reports whether a crash failpoint stopped this receiver (the
// simulated process death of the chaos tests). A dead receiver's engine
// has a killed WAL handle; the test harness reopens the data directory
// as a restarted process would.
func (r *Receiver) Dead() bool { return r.dead.Load() }

// Applied returns the highest LSN applied and locally durable.
func (r *Receiver) Applied() uint64 { return r.applied.Load() }

// Staleness implements server.ReplicaSource: how far this replica trails
// the primary in LSNs, how old its last caught-up contact is, and
// whether that exceeds the configured hard bound.
func (r *Receiver) Staleness() (lagLSN uint64, lag time.Duration, stale bool) {
	tip, applied := r.tip.Load(), r.applied.Load()
	if tip > applied {
		lagLSN = tip - applied
	}
	r.mu.Lock()
	freshAt := r.freshAt
	r.mu.Unlock()
	lag = time.Since(freshAt)
	stale = r.cfg.MaxStaleness > 0 && (lag > r.cfg.MaxStaleness || r.dead.Load())
	return lagLSN, lag, stale
}

func (r *Receiver) markFresh() {
	r.mu.Lock()
	r.freshAt = time.Now()
	r.mu.Unlock()
}

func (r *Receiver) setConn(c net.Conn) {
	r.mu.Lock()
	r.conn = c
	r.mu.Unlock()
}

func (r *Receiver) stopping() bool {
	select {
	case <-r.stop:
		return true
	default:
		return r.dead.Load()
	}
}

func (r *Receiver) run() {
	defer r.wg.Done()
	first := true
	for attempt := 0; ; {
		if r.stopping() {
			return
		}
		if !first && r.reconnects != nil {
			r.reconnects.Inc()
		}
		first = false
		conn, err := r.cfg.Dial(r.cfg.PrimaryAddr)
		if err != nil {
			if !sleepUnless(r.stop, r.cfg.Backoff.Delay(attempt)) {
				return
			}
			attempt++
			continue
		}
		attempt = 0
		r.setConn(conn)
		r.session(conn)
		r.setConn(nil)
		conn.Close()
		if r.stopping() {
			return
		}
		if !sleepUnless(r.stop, r.cfg.Backoff.Delay(0)) {
			return
		}
	}
}

// session runs one connection's lifetime: hello with the local resume
// position, then apply whatever the primary streams until the connection
// or the receiver dies.
func (r *Receiver) session(conn net.Conn) {
	enc := json.NewEncoder(conn)
	if err := enc.Encode(&message{Type: msgHello, FromLSN: r.db.ReplicationPosition()}); err != nil {
		return
	}

	msgCh := make(chan message, 256)
	errCh := make(chan error, 1)
	go func() {
		dec := json.NewDecoder(conn)
		for {
			var m message
			if err := dec.Decode(&m); err != nil {
				errCh <- err
				return
			}
			select {
			case msgCh <- m:
			case <-r.stop:
				return
			}
		}
	}()

	var batch []wal.Record
	for {
		select {
		case <-r.stop:
			r.flush(&batch, enc)
			return
		case <-errCh:
			r.flush(&batch, enc)
			return
		case m := <-msgCh:
			// Drain everything already buffered before paying the apply
			// fsync, so a hot stream batches its commits.
			for {
				if err := r.handle(m, &batch, enc); err != nil {
					return
				}
				if len(batch) >= r.cfg.BatchMax {
					if err := r.flush(&batch, enc); err != nil {
						return
					}
				}
				select {
				case m = <-msgCh:
					continue
				default:
				}
				break
			}
			if err := r.flush(&batch, enc); err != nil {
				return
			}
		}
	}
}

// handle processes one stream message. Records accumulate into batch
// (flushed by the session loop); snapshots and heartbeats flush first so
// ordering is preserved.
func (r *Receiver) handle(m message, batch *[]wal.Record, enc *json.Encoder) error {
	switch m.Type {
	case msgRecord:
		if m.Record == nil {
			return errors.New("replication: record message without record")
		}
		if m.TipLSN > r.tip.Load() {
			r.tip.Store(m.TipLSN)
		}
		*batch = append(*batch, *m.Record)
		return nil
	case msgSnapshot:
		if err := r.flush(batch, enc); err != nil {
			return err
		}
		return r.installSnapshot(m, enc)
	case msgHeartbeat:
		if err := r.flush(batch, enc); err != nil {
			return err
		}
		if m.TipLSN > r.tip.Load() {
			r.tip.Store(m.TipLSN)
		}
		if r.applied.Load() >= r.tip.Load() {
			r.markFresh()
		}
		return nil
	default:
		return fmt.Errorf("replication: unexpected message type %q", m.Type)
	}
}

// flush applies the accumulated batch through the engine (redo + local
// WAL stage + one commit fsync), then acknowledges it. The
// fp/replication/ack crash point models the replica dying after the
// batch is durable but before the ack reaches the primary: on restart
// the primary resends from the acked position and the LSN check in
// ApplyReplicated deduplicates.
func (r *Receiver) flush(batch *[]wal.Record, enc *json.Encoder) error {
	if len(*batch) == 0 {
		return nil
	}
	recs := *batch
	*batch = (*batch)[:0]

	at := r.db.Tracer().Start("(replication apply)")
	sp := at.StartSpan(trace.SpanReplApply, at.Root())
	sp.AttrInt("records", int64(len(recs)))
	sp.AttrInt("first_lsn", int64(recs[0].LSN))
	sp.AttrInt("last_lsn", int64(recs[len(recs)-1].LSN))
	err := r.db.ApplyReplicated(recs)
	sp.End()
	at.Finish("repl_apply", err)
	if err != nil {
		if r.applyErrors != nil {
			r.applyErrors.Inc()
		}
		if failpoint.IsCrash(err) {
			// Simulated process death mid-apply: the engine already
			// killed its WAL handle; stop following. The harness reopens
			// the data directory as a restarted replica would.
			r.dead.Store(true)
		}
		return err
	}
	lsn := recs[len(recs)-1].LSN
	if lsn > r.applied.Load() {
		r.applied.Store(lsn)
	}
	if r.recordsApplied != nil {
		r.recordsApplied.Add(int64(len(recs)))
	}
	if r.applied.Load() >= r.tip.Load() {
		r.markFresh()
	}
	if err := failpoint.Eval(failpoint.ReplicationAck); err != nil {
		if failpoint.IsCrash(err) {
			// Death after durability, before the ack: the classic
			// resend-and-dedup window.
			r.dead.Store(true)
			r.db.WAL().Kill()
		}
		return err
	}
	return enc.Encode(&message{Type: msgAck, LSN: lsn})
}

// installSnapshot replaces the replica's full state with a shipped
// snapshot (the primary shed this replica for falling behind a rotated
// WAL) and acknowledges the new position.
func (r *Receiver) installSnapshot(m message, enc *json.Encoder) error {
	if got := snapshotCRC(m.Snapshot); got != m.CRC {
		// A corrupted snapshot must never be installed half-checked: drop
		// the session (the caller closes the connection) and resync on
		// reconnect.
		if r.applyErrors != nil {
			r.applyErrors.Inc()
		}
		return fmt.Errorf("replication: snapshot CRC mismatch (want 0x%08x, got 0x%08x)", m.CRC, got)
	}
	at := r.db.Tracer().Start("(replication resync)")
	sp := at.StartSpan(trace.SpanReplResync, at.Root())
	sp.AttrInt("snapshot_bytes", int64(len(m.Snapshot)))
	lsn, err := r.db.InstallReplicaSnapshot(m.Snapshot)
	sp.End()
	at.Finish("repl_resync", err)
	if err != nil {
		if r.applyErrors != nil {
			r.applyErrors.Inc()
		}
		return err
	}
	if r.resyncs != nil {
		r.resyncs.Inc()
	}
	r.applied.Store(lsn)
	if m.TipLSN > r.tip.Load() {
		r.tip.Store(m.TipLSN)
	}
	if r.applied.Load() >= r.tip.Load() {
		r.markFresh()
	}
	return enc.Encode(&message{Type: msgAck, LSN: lsn})
}

// Shutdown stops following the primary: in-flight batches flush (apply
// is never abandoned halfway; durability is preserved), the connection
// closes, and the loop exits. Returns an error if the loop failed to
// stop within timeout (non-positive waits without bound).
func (r *Receiver) Shutdown(timeout time.Duration) error {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.mu.Lock()
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return nil
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		return errors.New("replication: receiver shutdown timed out")
	}
}

// sleepUnless sleeps d, returning false early if stop closes.
func sleepUnless(stop <-chan struct{}, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}
