package replication

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/failpoint"
	"insightnotes/internal/server"
)

// TestReplicationSoak is the end-to-end chaos soak of the replication
// subsystem: a primary with an aggressive checkpoint cadence (so the WAL
// rotates under the stream), two replicas serving reads behind staleness
// bounds, and a live write workload — during which one replica is killed
// mid-apply by a crash failpoint and restarted from its data directory.
//
// Asserted throughout:
//   - read-your-writes on the primary for every probe,
//   - the surviving replica keeps serving non-stale reads during the
//     outage,
//   - the restarted replica resumes from its last durable LSN (or
//     resyncs via snapshot if the log rotated past it) and converges,
//   - final states match record for record across all three engines,
//   - once the primary's sender is gone, replicas shed reads with the
//     structured STALE error and the routed client fails over.
func TestReplicationSoak(t *testing.T) {
	const maxStaleness = 800 * time.Millisecond

	// Primary: small checkpoint threshold so the log rotates mid-soak.
	pdir := t.TempDir()
	pdb, _, err := engine.OpenDurable(
		engine.Config{CacheDir: t.TempDir()},
		engine.DurabilityOptions{Dir: pdir, AutoCheckpointBytes: 32 << 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pdb.Close()
	sender, err := NewSender(pdb, SenderConfig{Heartbeat: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	repAddr, err := sender.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Shutdown(2 * time.Second)
	psrv := server.New(pdb)
	paddr, err := psrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()

	// Two replicas, each with its own engine, receiver, and server.
	type replica struct {
		dir  string
		db   *engine.DB
		rcv  *Receiver
		srv  *server.Server
		addr string
	}
	newReplica := func(dir string) *replica {
		t.Helper()
		db := openDB(t, dir, -1)
		rcv, err := NewReceiver(db, ReceiverConfig{
			PrimaryAddr: repAddr, MaxStaleness: maxStaleness, Backoff: fastBackoff,
		})
		if err != nil {
			t.Fatal(err)
		}
		rcv.Start()
		srv := server.New(db)
		srv.Replica = rcv
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return &replica{dir: dir, db: db, rcv: rcv, srv: srv, addr: addr}
	}
	stopReplica := func(r *replica) {
		r.srv.Close()
		r.rcv.Shutdown(2 * time.Second)
		r.db.Close()
	}
	replicas := []*replica{newReplica(t.TempDir()), newReplica(t.TempDir())}
	defer func() {
		for _, r := range replicas {
			stopReplica(r)
		}
	}()

	pc, err := server.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	mustOK := func(stmt string) *server.Response {
		t.Helper()
		resp, err := pc.Do(context.Background(), stmt)
		if err != nil {
			t.Fatalf("primary Exec(%q): %v", stmt, err)
		}
		if !resp.OK {
			t.Fatalf("primary Exec(%q): %s", stmt, resp.Error)
		}
		return resp
	}
	next := 0
	// writeBatch inserts n rows (annotating every tenth) and asserts
	// read-your-writes on the primary for the last one.
	writeBatch := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			next++
			mustOK(fmt.Sprintf("INSERT INTO birds VALUES (%d, 'Swan %d')", next, next))
			if next%10 == 0 {
				mustOK(fmt.Sprintf("ADD ANNOTATION 'observed feeding on stonewort run %d' ON birds WHERE id = %d", next, next))
			}
		}
		resp := mustOK(fmt.Sprintf("SELECT id FROM birds WHERE id = %d", next))
		if len(resp.Rows) != 1 {
			t.Fatalf("read-your-writes violated: id %d missing after insert", next)
		}
	}

	mustOK("CREATE TABLE birds (id INT, name TEXT)")
	mustOK("CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('Behavior', 'Other')")
	mustOK("TRAIN SUMMARY C ('feeding foraging stonewort', 'Behavior'), ('photo camera record', 'Other')")
	mustOK("LINK SUMMARY C TO birds")

	// Phase 1: steady streaming; both replicas converge.
	writeBatch(60)
	p := &primaryStack{db: pdb, sender: sender, addr: repAddr}
	for _, r := range replicas {
		waitCaughtUp(t, p, r.rcv)
		assertConverged(t, pdb, r.db)
	}

	// Phase 2: kill exactly one replica mid-apply. The failpoint action
	// crashes a single evaluation, so whichever receiver hits it dies
	// and the other keeps streaming.
	var hits atomic.Int64
	failpoint.Enable(failpoint.ReplicationApply, func() error {
		if hits.Add(1) == 5 {
			return failpoint.CrashError(failpoint.ReplicationApply)
		}
		return nil
	})
	defer failpoint.Reset()
	writeBatch(40)
	var dead, survivor *replica
	deadline := time.Now().Add(10 * time.Second)
	for dead == nil {
		for i, r := range replicas {
			if r.rcv.Dead() {
				dead, survivor = r, replicas[1-i]
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("crash failpoint never killed a replica")
		}
		time.Sleep(2 * time.Millisecond)
	}
	failpoint.Disable(failpoint.ReplicationApply)
	deadDir := dead.dir
	stopReplica(dead)

	// Outage: the primary keeps committing (enough to rotate the WAL
	// past the dead replica's position) with read-your-writes intact,
	// and the survivor keeps serving fresh reads.
	writeBatch(200)
	waitCaughtUp(t, p, survivor.rcv)
	sc, err := server.Dial(survivor.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	resp, err := sc.Do(context.Background(), fmt.Sprintf("SELECT id FROM birds WHERE id = %d", next))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("survivor shed a read during the outage: %+v", resp)
	}
	if resp.StatsDetail == nil || !resp.StatsDetail.Replica {
		t.Fatalf("survivor response missing replica staleness stamp: %+v", resp.StatsDetail)
	}

	// Phase 3: restart the killed replica from its directory. It must
	// resume from what it made durable before dying — not from zero —
	// and then converge (by stream resume or snapshot resync if the
	// primary rotated past it; both paths are legal here).
	restarted := newReplica(deadDir)
	replicas = []*replica{survivor, restarted}
	if pos := restarted.db.ReplicationPosition(); pos == 0 {
		t.Fatal("restarted replica lost its durable position")
	}
	writeBatch(20)
	for _, r := range replicas {
		waitCaughtUp(t, p, r.rcv)
	}

	// Phase 4: quiesce and compare record for record.
	for _, r := range replicas {
		assertConverged(t, pdb, r.db)
	}

	// Phase 5: sever replication; replicas cross the staleness bound and
	// shed with STALE, and the routed client fails over to the primary.
	if err := sender.Shutdown(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := sc.Do(context.Background(), "SELECT id FROM birds WHERE id = 1")
		if err != nil {
			t.Fatal(err)
		}
		if resp.Code == server.CodeStale {
			if resp.RetryAfterMS <= 0 {
				t.Fatalf("STALE shed without retry hint: %+v", resp)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never crossed the staleness bound after the link died")
		}
		time.Sleep(25 * time.Millisecond)
	}
	routed := server.NewRoutedClient(server.Topology{
		Primary:  paddr,
		Replicas: []string{replicas[0].addr, replicas[1].addr},
	})
	defer routed.Close()
	resp, err = routed.ExecRead(context.Background(), fmt.Sprintf("SELECT id FROM birds WHERE id = %d", next), 2)
	if err != nil {
		t.Fatalf("routed read should fail over past stale replicas: %v", err)
	}
	if !resp.OK || len(resp.Rows) != 1 {
		t.Fatalf("routed read after failover = %+v", resp)
	}
	if resp.StatsDetail != nil && resp.StatsDetail.Replica {
		t.Fatal("routed read was served by a stale replica")
	}
	// And writes still land on the primary through the routed client.
	next++
	wresp, err := routed.ExecWrite(context.Background(),
		fmt.Sprintf("INSERT INTO birds VALUES (%d, 'Swan %d')", next, next), 2)
	if err != nil || !wresp.OK {
		t.Fatalf("routed write = %+v, %v", wresp, err)
	}
}
