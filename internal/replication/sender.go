package replication

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/metrics"
	"insightnotes/internal/wal"
)

// SenderConfig tunes the primary-side WAL shipper. The zero value is
// usable: defaults fill in at NewSender.
type SenderConfig struct {
	// Heartbeat is how often an idle stream sends the primary's tip LSN
	// so replicas can keep their staleness measure fresh (default 500ms).
	Heartbeat time.Duration
	// WriteTimeout bounds each send to a replica (default 10s). A
	// replica too slow to drain the stream within it is disconnected —
	// it reconnects and resumes (or resyncs) — rather than ever holding
	// sender resources indefinitely; the primary's commit path is not
	// involved either way.
	WriteTimeout time.Duration
	// WrapConn, when set, wraps every accepted replica connection —
	// the chaos harness injects failpoint-driven flaky conns here.
	WrapConn func(net.Conn) net.Conn
}

// Sender streams the primary's WAL to connected replicas. It tails the
// WAL file up to the durable frontier — entirely off the commit path, so
// slow or dead replicas never block commits — tracks each replica's
// acknowledged LSN, and shed-and-resyncs any replica whose resume
// position predates the (rotated) log with a full snapshot.
type Sender struct {
	db  *engine.DB
	cfg SenderConfig

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{} // closed by Shutdown: stop accepting, start draining

	drainTo atomic.Uint64 // LSN replicas must ack before a draining stream closes
	drainCh chan struct{} // closed when drainTo is set

	mu       sync.Mutex
	replicas map[*replicaConn]struct{}

	recordsSent   *metrics.Counter
	snapshotsSent *metrics.Counter
	sendErrors    *metrics.Counter
}

// replicaConn is the sender's view of one connected replica.
type replicaConn struct {
	conn  net.Conn
	acked atomic.Uint64 // highest LSN the replica reported durably applied
	ackCh chan struct{} // non-blocking pulse on every ack (drain progress)
}

// NewSender builds a sender for db, which must be durable (have a WAL).
// Call Listen to start serving replicas.
func NewSender(db *engine.DB, cfg SenderConfig) (*Sender, error) {
	if db.WAL() == nil {
		return nil, errors.New("replication: sender requires a durable engine (-data-dir)")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	s := &Sender{
		db:       db,
		cfg:      cfg,
		closed:   make(chan struct{}),
		drainCh:  make(chan struct{}),
		replicas: make(map[*replicaConn]struct{}),
	}
	if reg := db.Metrics(); reg != nil {
		s.recordsSent = reg.Counter(metrics.NameReplRecordsSentTotal,
			"WAL records shipped to replicas.")
		s.snapshotsSent = reg.Counter(metrics.NameReplSnapshotsSentTotal,
			"Full snapshots shipped to resync replicas that fell behind a rotated WAL.")
		s.sendErrors = reg.Counter(metrics.NameReplSendErrorsTotal,
			"Replication sends that failed (timeout or connection loss); the replica reconnects.")
		reg.GaugeFunc(metrics.NameReplConnectedReplicas,
			"Replicas currently connected to the replication listener.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(len(s.replicas))
			})
		reg.GaugeFunc(metrics.NameReplAckedLSNMin,
			"Lowest LSN acknowledged as durably applied across connected replicas (0 with none connected).",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				var min uint64
				for rc := range s.replicas {
					if a := rc.acked.Load(); min == 0 || a < min {
						min = a
					}
				}
				return float64(min)
			})
	}
	return s, nil
}

// Listen binds addr (e.g. ":7071", or ":0" for an ephemeral port) and
// starts accepting replica connections. Returns the bound address.
func (s *Sender) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Sender) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		select {
		case <-s.closed:
			conn.Close()
			return
		default:
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve handles one replica for the life of its connection: handshake,
// then a send stream plus an ack-reading goroutine.
func (s *Sender) serve(conn net.Conn) {
	defer s.wg.Done()
	if s.cfg.WrapConn != nil {
		conn = s.cfg.WrapConn(conn)
	}
	defer conn.Close()

	dec := json.NewDecoder(conn)
	conn.SetReadDeadline(time.Now().Add(s.cfg.WriteTimeout))
	var hello message
	if err := dec.Decode(&hello); err != nil || hello.Type != msgHello {
		return
	}
	conn.SetReadDeadline(time.Time{})

	if hello.WantSnapshot {
		// One-shot snapshot service for page repair: ship a CRC-summed
		// snapshot and close; no stream state is created.
		s.serveSnapshot(conn)
		return
	}

	rc := &replicaConn{conn: conn, ackCh: make(chan struct{}, 1)}
	rc.acked.Store(hello.FromLSN)
	s.mu.Lock()
	s.replicas[rc] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.replicas, rc)
		s.mu.Unlock()
	}()

	connDone := make(chan struct{})
	go func() {
		defer close(connDone)
		for {
			var m message
			if err := dec.Decode(&m); err != nil {
				return
			}
			if m.Type == msgAck {
				rc.acked.Store(m.LSN)
				select {
				case rc.ackCh <- struct{}{}:
				default:
				}
			}
		}
	}()

	s.stream(conn, rc, hello.FromLSN, connDone)
}

// serveSnapshot answers a WantSnapshot hello: one CRC-summed full
// snapshot, then the connection closes (by the serve defer).
func (s *Sender) serveSnapshot(conn net.Conn) {
	var buf bytes.Buffer
	lsn, err := s.db.ReplicationSnapshot(&buf)
	if err != nil {
		return
	}
	raw := compactSnapshot(buf.Bytes())
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	enc := json.NewEncoder(conn)
	if err := enc.Encode(&message{Type: msgSnapshot, LSN: lsn, TipLSN: lsn, Snapshot: raw, CRC: snapshotCRC(raw)}); err != nil {
		if s.sendErrors != nil {
			s.sendErrors.Inc()
		}
		return
	}
	if s.snapshotsSent != nil {
		s.snapshotsSent.Inc()
	}
}

// stream ships records from the replica's resume position to the durable
// frontier, then follows the frontier as it advances. Rotation (the
// checkpoint generation changing under the tail) reopens the file; a
// resume position the file no longer covers triggers a snapshot resync.
func (s *Sender) stream(conn net.Conn, rc *replicaConn, from uint64, connDone <-chan struct{}) {
	log := s.db.WAL()
	enc := json.NewEncoder(conn)

	notify := make(chan struct{}, 1)
	log.SubscribeDurable(notify)
	defer log.UnsubscribeDurable(notify)
	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()

	last := from // highest LSN the replica is known to hold
	var tail *wal.TailReader
	defer func() {
		if tail != nil {
			tail.Close()
		}
	}()

	send := func(m *message) bool {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := enc.Encode(m); err != nil {
			if s.sendErrors != nil {
				s.sendErrors.Inc()
			}
			return false
		}
		return true
	}
	resync := func() bool {
		var buf bytes.Buffer
		lsn, err := s.db.ReplicationSnapshot(&buf)
		if err != nil {
			return false
		}
		raw := compactSnapshot(buf.Bytes())
		if !send(&message{Type: msgSnapshot, LSN: lsn, TipLSN: lsn, Snapshot: raw, CRC: snapshotCRC(raw)}) {
			return false
		}
		if s.snapshotsSent != nil {
			s.snapshotsSent.Inc()
		}
		last = lsn
		return true
	}
	var gen uint64
	reopen := func(g uint64) bool {
		if tail != nil {
			tail.Close()
			tail = nil
		}
		t, err := wal.OpenTail(log.Path())
		if err != nil {
			return false
		}
		tail, gen = t, g
		// The file only holds records above its base; a replica below it
		// can't be caught up from the log alone.
		if last < log.BaseLSN() {
			return resync()
		}
		return true
	}

	_, g, _ := log.DurableFrontier()
	if !reopen(g) {
		return
	}
	draining := false
	drainCh := s.drainCh
	for {
		durable, g, dead := log.DurableFrontier()
		if dead {
			return
		}
		if g != gen {
			if !reopen(g) {
				return
			}
			continue
		}
		rec, err := tail.Next(durable)
		switch {
		case err == nil:
			if rec.LSN <= last {
				continue // replica already has it (resume overlap)
			}
			if rec.LSN != last+1 {
				// Gap: records between last and rec were rotated away
				// under us. Shed-and-resync rather than ship a hole.
				if !resync() {
					return
				}
				continue
			}
			if !send(&message{Type: msgRecord, TipLSN: log.LastLSN(), Record: &rec}) {
				return
			}
			if s.recordsSent != nil {
				s.recordsSent.Inc()
			}
			last = rec.LSN
		case errors.Is(err, io.EOF), errors.Is(err, wal.ErrIncompleteTail):
			// Caught up to the durable frontier (an incomplete tail frame
			// is a concurrent append whose fsync hasn't landed: not ours
			// to ship yet). A draining stream may now retire once the
			// replica has acked everything committed before shutdown.
			if draining && last >= s.drainTo.Load() && rc.acked.Load() >= s.drainTo.Load() {
				return
			}
			select {
			case <-notify: // durable frontier moved (or rotation/death)
			case <-rc.ackCh: // ack progress while draining
			case <-hb.C:
				if !send(&message{Type: msgHeartbeat, TipLSN: log.LastLSN()}) {
					return
				}
			case <-connDone:
				return
			case <-drainCh:
				draining = true
				drainCh = nil // take this branch once; hb/ack pulses re-check
			}
		case errors.Is(err, wal.ErrRotated):
			continue // the frontier check above reopens on the next pass
		default:
			// Corrupt frame below the frontier or an I/O error: this
			// stream can't be trusted to continue. Drop the connection;
			// the replica reconnects and resumes or resyncs.
			if s.sendErrors != nil {
				s.sendErrors.Inc()
			}
			return
		}
	}
}

// Shutdown drains and stops the sender: no new replicas are accepted,
// and each connected stream keeps shipping until its replica has
// acknowledged everything the primary had committed when shutdown began
// — or until timeout (non-positive drains without bound), when remaining
// connections are severed (replicas resume from their own WALs on
// reconnect, so a forced cut loses nothing). Blocks until all streams
// are gone.
func (s *Sender) Shutdown(timeout time.Duration) error {
	select {
	case <-s.closed:
	default:
		s.drainTo.Store(s.db.ReplicationPosition())
		close(s.drainCh)
		close(s.closed)
		if s.ln != nil {
			s.ln.Close()
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return nil
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
	}
	// Drain deadline passed: sever remaining streams.
	s.mu.Lock()
	for rc := range s.replicas {
		rc.conn.Close()
	}
	s.mu.Unlock()
	<-done
	return errors.New("replication: sender shutdown forced after drain timeout")
}
