package replication

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/failpoint"
	"insightnotes/internal/server"
	"insightnotes/internal/wal"
)

// fastBackoff keeps test reconnect loops tight.
var fastBackoff = server.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}

// openDB opens a durable engine at dir. autoCkpt follows
// engine.DurabilityOptions semantics (-1 disables auto-checkpointing).
func openDB(t *testing.T, dir string, autoCkpt int64) *engine.DB {
	t.Helper()
	db, _, err := engine.OpenDurable(
		engine.Config{CacheDir: t.TempDir()},
		engine.DurabilityOptions{Dir: dir, AutoCheckpointBytes: autoCkpt},
	)
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	return db
}

// primaryStack is a durable engine with a replication sender listening.
type primaryStack struct {
	db     *engine.DB
	sender *Sender
	addr   string
}

func startPrimary(t *testing.T, dir string, autoCkpt int64, cfg SenderConfig) *primaryStack {
	t.Helper()
	db := openDB(t, dir, autoCkpt)
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 25 * time.Millisecond
	}
	s, err := NewSender(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Shutdown(2 * time.Second)
		db.Close()
	})
	return &primaryStack{db: db, sender: s, addr: addr}
}

// replicaStack is a durable engine following a primary.
type replicaStack struct {
	db  *engine.DB
	rcv *Receiver
}

func startReplica(t *testing.T, dir, primaryAddr string, cfg ReceiverConfig) *replicaStack {
	t.Helper()
	db := openDB(t, dir, -1)
	cfg.PrimaryAddr = primaryAddr
	if cfg.Backoff.Base == 0 {
		cfg.Backoff = fastBackoff
	}
	r, err := NewReceiver(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(func() {
		r.Shutdown(2 * time.Second)
		db.Close()
	})
	return &replicaStack{db: db, rcv: r}
}

func mustExec(t *testing.T, db *engine.DB, stmt string) {
	t.Helper()
	if _, err := db.Exec(context.Background(), stmt); err != nil {
		t.Fatalf("Exec(%q): %v", stmt, err)
	}
}

// seedSchema installs the demo-style schema used across these tests.
func seedSchema(t *testing.T, db *engine.DB) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE birds (id INT, name TEXT)")
	mustExec(t, db, "CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('Behavior', 'Other')")
	mustExec(t, db, "TRAIN SUMMARY C ('feeding foraging stonewort', 'Behavior'), ('photo camera record', 'Other')")
	mustExec(t, db, "LINK SUMMARY C TO birds")
}

// waitCaughtUp blocks until the replica has applied the primary's
// current position (taken once, at call time).
func waitCaughtUp(t *testing.T, p *primaryStack, r *Receiver) {
	t.Helper()
	target := p.db.ReplicationPosition()
	deadline := time.Now().Add(10 * time.Second)
	for r.Applied() < target {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at lsn %d, want %d", r.Applied(), target)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stateOf serializes a database's full logical state deterministically.
func stateOf(t *testing.T, db *engine.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertConverged compares two databases record for record: the full
// serialized state (tables, rows, annotations, instances, links) plus
// the maintained summary rendering of a probe row.
func assertConverged(t *testing.T, primary, replica *engine.DB) {
	t.Helper()
	ps, rs := stateOf(t, primary), stateOf(t, replica)
	if !bytes.Equal(ps, rs) {
		t.Fatalf("replica diverged from primary:\nprimary: %s\nreplica: %s", ps, rs)
	}
	penv, renv := primary.StoredEnvelope("birds", 1), replica.StoredEnvelope("birds", 1)
	switch {
	case penv == nil && renv == nil:
	case penv == nil || renv == nil:
		t.Fatalf("summary envelope presence differs: primary=%v replica=%v", penv != nil, renv != nil)
	default:
		if p, r := penv.Object("C").Render(), renv.Object("C").Render(); p != r {
			t.Fatalf("summary rendering diverged: primary=%q replica=%q", p, r)
		}
	}
}

func TestReplicationStreamsCommits(t *testing.T) {
	p := startPrimary(t, t.TempDir(), -1, SenderConfig{})
	r := startReplica(t, t.TempDir(), p.addr, ReceiverConfig{})

	seedSchema(t, p.db)
	mustExec(t, p.db, "INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan')")
	mustExec(t, p.db, "ADD ANNOTATION 'observed feeding on stonewort' ON birds WHERE id = 1")
	waitCaughtUp(t, p, r.rcv)
	assertConverged(t, p.db, r.db)

	// The stream is continuous: later commits flow without reconnecting.
	mustExec(t, p.db, "UPDATE birds SET name = 'Anser cygnoides' WHERE id = 1")
	mustExec(t, p.db, "ADD ANNOTATION 'photo in repository' ON birds WHERE id = 2")
	waitCaughtUp(t, p, r.rcv)
	assertConverged(t, p.db, r.db)

	if lagLSN, _, stale := r.rcv.Staleness(); lagLSN != 0 || stale {
		t.Fatalf("caught-up replica reports lag %d stale=%v", lagLSN, stale)
	}
}

func TestReplicaResumesFromDurableLSNAfterRestart(t *testing.T) {
	p := startPrimary(t, t.TempDir(), -1, SenderConfig{})
	rdir := t.TempDir()

	seedSchema(t, p.db)
	mustExec(t, p.db, "INSERT INTO birds VALUES (1, 'Swan Goose')")

	// First incarnation: catch up, then stop cleanly.
	rdb := openDB(t, rdir, -1)
	rcv, err := NewReceiver(rdb, ReceiverConfig{PrimaryAddr: p.addr, Backoff: fastBackoff})
	if err != nil {
		t.Fatal(err)
	}
	rcv.Start()
	waitCaughtUp(t, p, rcv)
	resumeAt := rcv.Applied()
	if err := rcv.Shutdown(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	rdb.Close()

	// Primary keeps committing while the replica is down.
	mustExec(t, p.db, "INSERT INTO birds VALUES (2, 'Mute Swan')")
	mustExec(t, p.db, "ADD ANNOTATION 'observed feeding on stonewort' ON birds WHERE id = 1")

	// Second incarnation reopens the same dir and resumes at the durable
	// position — no records reapplied, none skipped.
	r2 := startReplica(t, rdir, p.addr, ReceiverConfig{})
	if got := r2.db.ReplicationPosition(); got != resumeAt {
		t.Fatalf("restarted replica resumes at lsn %d, want %d", got, resumeAt)
	}
	waitCaughtUp(t, p, r2.rcv)
	assertConverged(t, p.db, r2.db)
}

// TestReplicaCrashMidApplyResumes mirrors TestCrashRecovery across the
// replication link: a crash failpoint kills the replica mid-batch, and a
// reopened replica must resume from its last durable LSN with no
// divergence.
func TestReplicaCrashMidApplyResumes(t *testing.T) {
	// fp/replication/apply fires per record, fp/replication/ack per
	// flushed batch; pick thresholds both can reach.
	for point, after := range map[string]int{failpoint.ReplicationApply: 6, failpoint.ReplicationAck: 1} {
		t.Run(filepath.Base(point), func(t *testing.T) {
			defer failpoint.Reset()
			p := startPrimary(t, t.TempDir(), -1, SenderConfig{})
			rdir := t.TempDir()

			seedSchema(t, p.db)
			rdb := openDB(t, rdir, -1)
			rcv, err := NewReceiver(rdb, ReceiverConfig{PrimaryAddr: p.addr, Backoff: fastBackoff, BatchMax: 2})
			if err != nil {
				t.Fatal(err)
			}
			failpoint.EnableAfter(point, after, failpoint.CrashError(point))
			rcv.Start()
			mustExec(t, p.db, "INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan')")
			mustExec(t, p.db, "ADD ANNOTATION 'observed feeding on stonewort' ON birds WHERE id = 1")
			mustExec(t, p.db, "UPDATE birds SET name = 'Anser cygnoides' WHERE id = 1")

			deadline := time.Now().Add(10 * time.Second)
			for !rcv.Dead() {
				if time.Now().After(deadline) {
					t.Fatal("crash failpoint never fired")
				}
				time.Sleep(5 * time.Millisecond)
			}
			rcv.Shutdown(2 * time.Second)
			rdb.Close()
			failpoint.Disable(point)

			r2 := startReplica(t, rdir, p.addr, ReceiverConfig{})
			waitCaughtUp(t, p, r2.rcv)
			assertConverged(t, p.db, r2.db)
		})
	}
}

// TestReplicaResyncsAfterRotation covers shed-and-resync: a replica
// whose resume position predates the primary's rotated WAL gets a full
// snapshot instead of a record stream it can no longer follow.
func TestReplicaResyncsAfterRotation(t *testing.T) {
	p := startPrimary(t, t.TempDir(), -1, SenderConfig{})
	seedSchema(t, p.db)
	mustExec(t, p.db, "INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan')")
	mustExec(t, p.db, "ADD ANNOTATION 'observed feeding on stonewort' ON birds WHERE id = 1")
	// Rotate: every record so far is truncated into the snapshot, so a
	// replica starting from LSN 0 cannot be served from the log.
	if _, err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, p.db, "INSERT INTO birds VALUES (3, 'Whooper Swan')")

	r := startReplica(t, t.TempDir(), p.addr, ReceiverConfig{})
	waitCaughtUp(t, p, r.rcv)
	assertConverged(t, p.db, r.db)

	// The replica follows rotations mid-stream too: a checkpoint while
	// connected reopens the tail without a resync (it is caught up).
	mustExec(t, p.db, "INSERT INTO birds VALUES (4, 'Trumpeter Swan')")
	if _, err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, p.db, "UPDATE birds SET name = 'Cygnus cygnus' WHERE id = 3")
	waitCaughtUp(t, p, r.rcv)
	assertConverged(t, p.db, r.db)
}

// TestReplicationSurvivesFlakyLink runs the stream over connections that
// chunk writes and drop mid-frame after a byte budget, in both
// directions: the replica must reconnect, resume, and converge.
func TestReplicationSurvivesFlakyLink(t *testing.T) {
	p := startPrimary(t, t.TempDir(), -1, SenderConfig{
		WrapConn: func(c net.Conn) net.Conn {
			return &failpoint.FlakyConn{Conn: c, WriteChunk: 7, DropAfter: 4096}
		},
	})
	r := startReplica(t, t.TempDir(), p.addr, ReceiverConfig{
		Dial: func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return &failpoint.FlakyConn{Conn: c, WriteChunk: 5, DropAfter: 8192}, nil
		},
	})

	seedSchema(t, p.db)
	for i := 0; i < 40; i++ {
		mustExec(t, p.db, "INSERT INTO birds VALUES (1, 'Swan Goose')")
	}
	mustExec(t, p.db, "ADD ANNOTATION 'observed feeding on stonewort' ON birds WHERE id = 1")
	waitCaughtUp(t, p, r.rcv)
	assertConverged(t, p.db, r.db)
}

// TestSenderShutdownDrainsAcks is the graceful-drain regression test:
// Shutdown must keep streaming until connected replicas have durably
// acknowledged everything committed before shutdown, and force-close
// only after the drain timeout.
func TestSenderShutdownDrainsAcks(t *testing.T) {
	dir := t.TempDir()
	db := openDB(t, dir, -1)
	defer db.Close()
	s, err := NewSender(db, SenderConfig{Heartbeat: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	seedSchema(t, db)
	mustExec(t, db, "INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan')")
	target := db.ReplicationPosition()

	// A slow replica: reads from the primary dribble in, so at shutdown
	// time it has not acked everything yet.
	r := startReplica(t, t.TempDir(), addr, ReceiverConfig{
		Dial: func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return &failpoint.FlakyConn{Conn: c, ReadDelay: 3 * time.Millisecond}, nil
		},
	})
	// Wait for the session to be established, not for catch-up.
	deadline := time.Now().Add(5 * time.Second)
	for r.rcv.Applied() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica never connected")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	if got := r.rcv.Applied(); got < target {
		t.Fatalf("shutdown returned with replica at lsn %d, want >= %d (drain must wait for acks)", got, target)
	}

	// Forced path: a sender with a replica that cannot drain in time
	// reports the forced close instead of hanging.
	db2 := openDB(t, t.TempDir(), -1)
	defer db2.Close()
	s2, err := NewSender(db2, SenderConfig{Heartbeat: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	seedSchema(t, db2)
	conn, err := net.Dial("tcp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A raw hello with no acks ever: the drain cannot complete.
	if _, err := conn.Write([]byte(`{"type":"hello","from_lsn":0}` + "\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the stream register
	if err := s2.Shutdown(200 * time.Millisecond); err == nil {
		t.Fatal("shutdown with a never-acking replica should report the forced close")
	}
}

// TestStaleReplicaShedsReads drives the staleness bound end to end: a
// replica cut off from its primary crosses -max-staleness and its server
// sheds reads with the structured STALE error, while the routed client
// fails over to the primary.
func TestStaleReplicaShedsReads(t *testing.T) {
	p := startPrimary(t, t.TempDir(), -1, SenderConfig{Heartbeat: 20 * time.Millisecond})
	psrv := server.New(p.db)
	paddr, err := psrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { psrv.Close() })

	r := startReplica(t, t.TempDir(), p.addr, ReceiverConfig{MaxStaleness: 250 * time.Millisecond})
	rsrv := server.New(r.db)
	rsrv.Replica = r.rcv
	raddr, err := rsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsrv.Close() })

	seedSchema(t, p.db)
	mustExec(t, p.db, "INSERT INTO birds VALUES (1, 'Swan Goose')")
	waitCaughtUp(t, p, r.rcv)

	rc, err := server.Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Fresh replica serves reads, stamped with the staleness bound.
	resp, err := rc.Do(context.Background(), "SELECT id, name FROM birds")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Rows) != 1 {
		t.Fatalf("replica read = %+v", resp)
	}
	if resp.StatsDetail == nil || !resp.StatsDetail.Replica {
		t.Fatalf("replica response missing staleness stamp: %+v", resp.StatsDetail)
	}

	// Mutations never run on a replica.
	resp, err = rc.Do(context.Background(), "INSERT INTO birds VALUES (9, 'Impostor')")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != server.CodeReadOnly {
		t.Fatalf("replica mutation = %+v, want code %s", resp, server.CodeReadOnly)
	}

	// Sever the primary's sender: heartbeats stop, the staleness clock
	// runs past the bound, and reads shed with STALE.
	if err := p.sender.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = rc.Do(context.Background(), "SELECT id FROM birds")
		if err != nil {
			t.Fatal(err)
		}
		if resp.Code == server.CodeStale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never went stale: %+v", resp)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resp.RetryAfterMS <= 0 {
		t.Fatalf("STALE shed without a retry hint: %+v", resp)
	}

	// Replica-aware failover: the routed client prefers the replica,
	// sees the shed, and lands the read on the primary.
	routed := server.NewRoutedClient(server.Topology{Primary: paddr, Replicas: []string{raddr}})
	defer routed.Close()
	resp, err = routed.ExecRead(context.Background(), "SELECT id, name FROM birds", 2)
	if err != nil {
		t.Fatalf("routed read should fail over to the primary: %v", err)
	}
	if !resp.OK || len(resp.Rows) != 1 {
		t.Fatalf("routed read = %+v", resp)
	}
	if resp.StatsDetail != nil && resp.StatsDetail.Replica {
		t.Fatal("routed read was served by the stale replica")
	}
}

// TestTailIncompleteFrameRetries exercises the sender-facing contract of
// the hardened tail reader against a live log: a partially synced frame
// is reported retryable and the sender-side loop semantics (skip, wait)
// see the completed record on the next durable notification.
func TestSenderSkipsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	db := openDB(t, dir, -1)
	defer db.Close()
	seedSchema(t, db)

	tr, err := wal.OpenTail(db.WAL().Path())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	durable, _, _ := db.WAL().DurableFrontier()
	n := 0
	for {
		_, err := tr.Next(durable)
		if err != nil {
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("tail read %d durable records, want 4 (seed schema)", n)
	}
}
