package replication

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"insightnotes/internal/engine"
	"insightnotes/internal/server"
	"insightnotes/internal/storage"
	"insightnotes/internal/types"
)

// flipPageByte flips one payload byte of page pid inside a page file.
func flipPageByte(t *testing.T, path string, pid storage.PageID) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := int64(pid)*storage.PageSize + storage.PageSize - 1
	buf := []byte{0}
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
}

// TestFetchSnapshotEndToEnd requests a one-shot CRC-verified snapshot from
// a live sender and installs it into a fresh replica engine.
func TestFetchSnapshotEndToEnd(t *testing.T) {
	p := startPrimary(t, t.TempDir(), -1, SenderConfig{})
	seedSchema(t, p.db)
	mustExec(t, p.db, "INSERT INTO birds VALUES (1, 'Swan Goose'), (2, 'Mute Swan')")
	mustExec(t, p.db, "ADD ANNOTATION 'observed feeding on stonewort' ON birds WHERE id = 1")

	raw, err := FetchSnapshot(p.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty snapshot")
	}
	rdb := openDB(t, t.TempDir(), -1)
	defer rdb.Close()
	if _, err := rdb.InstallReplicaSnapshot(raw); err != nil {
		t.Fatalf("install fetched snapshot: %v", err)
	}
	assertConverged(t, p.db, rdb)

	// The regular stream still works after one-shot fetches (the sender
	// must not wedge its listener).
	r := startReplica(t, t.TempDir(), p.addr, ReceiverConfig{})
	waitCaughtUp(t, p, r.rcv)
	assertConverged(t, p.db, r.db)
}

// TestFetchSnapshotRejectsBadCRC serves a tampered snapshot from a fake
// primary and verifies the fetcher refuses it.
func TestFetchSnapshotRejectsBadCRC(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hello message
		if json.NewDecoder(conn).Decode(&hello) != nil {
			return
		}
		raw := []byte(`{"version":1}`)
		json.NewEncoder(conn).Encode(&message{
			Type: msgSnapshot, Snapshot: raw, CRC: snapshotCRC(raw) + 1,
		})
	}()
	_, err = FetchSnapshot(ln.Addr().String(), 2*time.Second)
	if err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("tampered snapshot accepted: %v", err)
	}
}

// TestScrubSoak is the end-to-end bit-rot chaos soak: a primary streaming
// to a replica, random byte flips injected into heap pages on disk, and
// the scrubber expected to detect every flip and drive each page through
// the repair ladder — local rebuild for memory-mirrored owners, a
// CRC-verified snapshot fetched over the replication link for row and
// annotation content, and a structured CORRUPT shed when no source exists.
func TestScrubSoak(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	p := startPrimary(t, pdir, -1, SenderConfig{})
	seedSchema(t, p.db)
	mustExec(t, p.db, "CREATE INDEX ON birds (id)")
	// Append-only workload, padded rows so the heap spans many pages.
	pad := strings.Repeat("x", 160)
	for i := 1; i <= 400; i++ {
		mustExec(t, p.db, fmt.Sprintf("INSERT INTO birds VALUES (%d, 'Swan %d %s')", i, i, pad))
		if i%20 == 0 {
			mustExec(t, p.db, fmt.Sprintf("ADD ANNOTATION 'observed feeding on stonewort run %d' ON birds WHERE id = %d", i, i))
		}
	}
	r := startReplica(t, rdir, p.addr, ReceiverConfig{})
	waitCaughtUp(t, p, r.rcv)
	assertConverged(t, p.db, r.db)

	// ---- Phase 1: rot the replica; repairs come from the primary over
	// the replication link. ----
	r.db.SetRepairSource(SnapshotFetcher(p.addr, 5*time.Second))
	if err := r.db.FlushPages(); err != nil {
		t.Fatal(err)
	}
	inv, err := r.db.HeapPageInventory()
	if err != nil {
		t.Fatal(err)
	}
	rpf := filepath.Join(rdir, "pages.db")
	flipped := map[storage.PageID]string{}
	pick := func(owner string, n int) {
		pages := inv[owner]
		if len(pages) < n {
			t.Fatalf("owner %s has only %d pages, want %d (inventory %v)", owner, len(pages), n, inv)
		}
		for i := 0; i < n; i++ {
			pid := pages[i*len(pages)/n] // spread across the heap
			if _, dup := flipped[pid]; dup {
				pid = pages[i]
			}
			flipped[pid] = owner
			flipPageByte(t, rpf, pid)
		}
	}
	pick("table:birds", 4)
	pick("annotations", 1)
	pick("targets", 1)

	rep, err := r.db.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	found := map[storage.PageID]engine.IntegrityFault{}
	for _, f := range rep.Faults {
		if f.Page != storage.InvalidPageID {
			found[f.Page] = f
		}
	}
	for pid, owner := range flipped {
		f, ok := found[pid]
		if !ok {
			t.Fatalf("flip on page %d (%s) undetected; faults %+v", pid, owner, rep.Faults)
		}
		if !f.Repaired {
			t.Fatalf("page %d (%s) not repaired: %+v", pid, owner, f)
		}
		wantSrc := "replica"
		if owner == "targets" {
			wantSrc = "rebuild" // targets are memory-mirrored: local rebuild
		}
		if f.Source != wantSrc {
			t.Fatalf("page %d (%s) repaired from %q, want %q", pid, owner, f.Source, wantSrc)
		}
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("pages left quarantined after repair: %v", rep.Quarantined)
	}

	// ---- Phase 2: index disagreement on the replica; the sweep rebuilds
	// the index from the heap. ----
	tbl, err := r.db.Catalog().Table("birds")
	if err != nil {
		t.Fatal(err)
	}
	idx := tbl.Index("id")
	if idx == nil {
		t.Fatal("replica lost the birds.id index")
	}
	key := storage.EncodeKey(nil, types.NewInt(123))
	vals := idx.Seek(key)
	if len(vals) == 0 {
		t.Fatal("no index entry for id=123")
	}
	idx.Delete(key, vals[0])
	rep, err = r.db.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	fixed := false
	for _, f := range rep.Faults {
		if f.Owner == "index:birds" && f.Repaired && f.Source == "rebuild" {
			fixed = true
		}
	}
	if !fixed {
		t.Fatalf("index disagreement not repaired; faults %+v", rep.Faults)
	}

	// Replica converged again, record for record.
	assertConverged(t, p.db, r.db)

	// ---- Phase 3: rot the primary, which has no repair source — reads
	// must shed with a structured CORRUPT error, not serve garbage. ----
	psrv := server.New(p.db)
	paddr, err := psrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()
	pc, err := server.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	if err := p.db.FlushPages(); err != nil {
		t.Fatal(err)
	}
	pinv, err := p.db.HeapPageInventory()
	if err != nil {
		t.Fatal(err)
	}
	ppf := filepath.Join(pdir, "pages.db")
	badPID := pinv["table:birds"][0]
	flipPageByte(t, ppf, badPID)
	prep, err := p.db.ScrubNow()
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Quarantined) != 1 || prep.Quarantined[0] != badPID {
		t.Fatalf("standalone primary quarantine = %v, want [%d]", prep.Quarantined, badPID)
	}
	resp, err := pc.Do(context.Background(), "SELECT name FROM birds")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != server.CodeCorrupt {
		t.Fatalf("read over quarantined page = %+v, want code %s", resp, server.CodeCorrupt)
	}
	if !strings.Contains(resp.Error, fmt.Sprint(badPID)) {
		t.Fatalf("CORRUPT shed does not name page %d: %q", badPID, resp.Error)
	}

	// ---- Phase 4: give the primary a repair source (the converged
	// replica) and heal it with CHECK TABLE over the wire. ----
	p.db.SetRepairSource(func() ([]byte, error) {
		var buf bytes.Buffer
		if _, err := r.db.ReplicationSnapshot(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	resp, err = pc.Do(context.Background(), "CHECK TABLE birds")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("CHECK TABLE birds: %+v", resp)
	}
	resp, err = pc.Do(context.Background(), "SELECT name FROM birds WHERE id = 123")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Rows) != 1 {
		t.Fatalf("read after CHECK TABLE repair = %+v", resp)
	}

	// ---- Phase 5: both sides sweep clean and agree. ----
	for _, db := range []*engine.DB{p.db, r.db} {
		rep, err := db.ScrubNow()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Faults) != 0 || len(rep.Quarantined) != 0 {
			t.Fatalf("final sweep not clean: %+v", rep)
		}
	}
	assertConverged(t, p.db, r.db)
	if rep := p.db.IntegrityReport(); rep.ChecksumFailures == 0 || rep.Repairs == 0 || rep.Sweeps < 2 {
		t.Fatalf("primary integrity report undercounts: %+v", rep)
	}
}
