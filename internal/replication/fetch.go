package replication

import (
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// DefaultFetchTimeout bounds one snapshot fetch end to end (dial, hello,
// snapshot transfer).
const DefaultFetchTimeout = 30 * time.Second

// FetchSnapshot dials a primary's replication listener, requests a
// one-shot full snapshot (WantSnapshot hello), verifies its CRC32-C, and
// returns the raw snapshot document — exactly the bytes
// engine.InstallReplicaSnapshot accepts and the scrubber's repair path
// parses. timeout <= 0 uses DefaultFetchTimeout.
func FetchSnapshot(addr string, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = DefaultFetchTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("replication: snapshot fetch dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := json.NewEncoder(conn).Encode(&message{Type: msgHello, WantSnapshot: true}); err != nil {
		return nil, fmt.Errorf("replication: snapshot fetch hello: %w", err)
	}
	var m message
	if err := json.NewDecoder(conn).Decode(&m); err != nil {
		return nil, fmt.Errorf("replication: snapshot fetch read: %w", err)
	}
	if m.Type != msgSnapshot {
		return nil, fmt.Errorf("replication: snapshot fetch got %q, want %q", m.Type, msgSnapshot)
	}
	if got := snapshotCRC(m.Snapshot); got != m.CRC {
		return nil, fmt.Errorf("replication: fetched snapshot CRC mismatch (want 0x%08x, got 0x%08x)", m.CRC, got)
	}
	return m.Snapshot, nil
}

// SnapshotFetcher adapts FetchSnapshot to the engine's repair-source
// signature (engine.DB.SetRepairSource): a closure fetching from addr.
func SnapshotFetcher(addr string, timeout time.Duration) func() ([]byte, error) {
	return func() ([]byte, error) { return FetchSnapshot(addr, timeout) }
}
