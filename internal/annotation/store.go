package annotation

import (
	"fmt"
	"sort"
	"sync"

	"insightnotes/internal/storage"
	"insightnotes/internal/types"
)

// Store persists raw annotations and their targets in two heap files and
// maintains in-memory indexes: annotation id → heap RID, and
// (table, row) → annotation refs. The indexes are rebuilt from the heaps by
// OpenStore, mirroring the package storage convention.
//
// Locking: mu guards the heap files and the id-keyed indexes; the hot
// per-tuple ref index lives in rowIdx under its own N-way striped locks
// (see rowindex.go), so concurrent readers resolving different tuples do
// not serialize. The ordering is always mu → stripe.
type Store struct {
	mu      sync.RWMutex
	anns    *storage.HeapFile
	targets *storage.HeapFile
	nextID  ID

	byID   map[ID]storage.RID
	rowIdx *rowIndex
	// targetsOf maps an annotation to all its targets (with the heap RID
	// of each target record, so retraction can delete them), for zoom-in
	// displays, re-summarization after instance changes, and deletion.
	targetsOf map[ID][]targetEntry
	// bytes of raw annotation payload, for the E1 size benchmarks.
	rawBytes int64
}

// targetEntry pairs a target with the heap RID of its record.
type targetEntry struct {
	Target
	rid storage.RID
}

// NewStore creates an empty store over pool.
func NewStore(pool *storage.BufferPool) *Store {
	return &Store{
		anns:      storage.NewHeapFile(pool),
		targets:   storage.NewHeapFile(pool),
		nextID:    1,
		byID:      make(map[ID]storage.RID),
		rowIdx:    newRowIndex(),
		targetsOf: make(map[ID][]targetEntry),
	}
}

// OpenStore reattaches a store to previously persisted heap pages and
// rebuilds all indexes.
func OpenStore(pool *storage.BufferPool, annPages, targetPages []storage.PageID) (*Store, error) {
	anns, err := storage.OpenHeapFile(pool, annPages)
	if err != nil {
		return nil, err
	}
	targets, err := storage.OpenHeapFile(pool, targetPages)
	if err != nil {
		return nil, err
	}
	s := &Store{
		anns:      anns,
		targets:   targets,
		nextID:    1,
		byID:      make(map[ID]storage.RID),
		rowIdx:    newRowIndex(),
		targetsOf: make(map[ID][]targetEntry),
	}
	var scanErr error
	anns.Scan(func(rid storage.RID, data []byte) bool {
		a, err := decodeAnnotation(data)
		if err != nil {
			scanErr = err
			return false
		}
		s.byID[a.ID] = rid
		s.rawBytes += int64(len(data))
		if a.ID >= s.nextID {
			s.nextID = a.ID + 1
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	targets.Scan(func(rid storage.RID, data []byte) bool {
		id, tg, err := decodeTarget(data)
		if err != nil {
			scanErr = err
			return false
		}
		s.rawBytes += int64(len(data))
		s.indexTarget(id, tg, rid)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return s, nil
}

// Pages returns the heap page lists (annotations, targets) for catalog
// persistence.
func (s *Store) Pages() (annPages, targetPages []storage.PageID) {
	return s.anns.Pages(), s.targets.Pages()
}

// VerifyAnnPage checks one annotation-heap page: structural invariants,
// then for up to sample records (sample <= 0 checks all) that the record
// decodes and the id index maps the annotation back to exactly this
// record.
func (s *Store) VerifyAnnPage(pid storage.PageID, sample int) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.anns.ViewPage(pid, func(pg *storage.Page) error {
		if err := pg.Verify(); err != nil {
			return err
		}
		checked := 0
		var verr error
		rerr := pg.Records(func(slot uint16, data []byte) bool {
			if sample > 0 && checked >= sample {
				return false
			}
			checked++
			a, err := decodeAnnotation(data)
			if err != nil {
				verr = fmt.Errorf("annotation: page %d slot %d: %w", pid, slot, err)
				return false
			}
			if rid, ok := s.byID[a.ID]; !ok || rid != (storage.RID{Page: pid, Slot: slot}) {
				verr = fmt.Errorf("annotation: page %d slot %d: id %d not mapped to this record", pid, slot, a.ID)
				return false
			}
			return true
		})
		if rerr != nil {
			return rerr
		}
		return verr
	})
}

// VerifyTargetPage checks one target-heap page: structural invariants,
// then for up to sample records that the record decodes and the in-memory
// target index holds a matching entry.
func (s *Store) VerifyTargetPage(pid storage.PageID, sample int) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.targets.ViewPage(pid, func(pg *storage.Page) error {
		if err := pg.Verify(); err != nil {
			return err
		}
		checked := 0
		var verr error
		rerr := pg.Records(func(slot uint16, data []byte) bool {
			if sample > 0 && checked >= sample {
				return false
			}
			checked++
			id, _, err := decodeTarget(data)
			if err != nil {
				verr = fmt.Errorf("annotation: target page %d slot %d: %w", pid, slot, err)
				return false
			}
			found := false
			for _, e := range s.targetsOf[id] {
				if e.rid == (storage.RID{Page: pid, Slot: slot}) {
					found = true
					break
				}
			}
			if !found {
				verr = fmt.Errorf("annotation: target page %d slot %d: id %d has no matching index entry", pid, slot, id)
				return false
			}
			return true
		})
		if rerr != nil {
			return rerr
		}
		return verr
	})
}

// RepairAnnPage rebuilds annotation-heap page pid: slot placement comes
// from the in-memory id index, content from fetch (a replica snapshot,
// typically — annotation payloads live only on the heap). Every id the
// index places on the page must resolve or the repair refuses.
func (s *Store) RepairAnnPage(pid storage.PageID, fetch func(id ID) (Annotation, bool)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var recs []storage.SlotRecord
	for id, rid := range s.byID {
		if rid.Page != pid {
			continue
		}
		a, ok := fetch(id)
		if !ok {
			return fmt.Errorf("annotation: id %d on page %d has no clean source", id, pid)
		}
		a.ID = id
		recs = append(recs, storage.SlotRecord{Slot: rid.Slot, Data: encodeAnnotation(a)})
	}
	return s.anns.RepairPage(pid, recs)
}

// RepairTargetPage rebuilds target-heap page pid from the in-memory target
// index alone — targets are fully memory-resident, so a corrupt target
// page is always locally repairable.
func (s *Store) RepairTargetPage(pid storage.PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var recs []storage.SlotRecord
	for id, entries := range s.targetsOf {
		for _, e := range entries {
			if e.rid.Page != pid {
				continue
			}
			recs = append(recs, storage.SlotRecord{Slot: e.rid.Slot, Data: encodeTarget(id, e.Target)})
		}
	}
	return s.targets.RepairPage(pid, recs)
}

func (s *Store) indexTarget(id ID, tg Target, rid storage.RID) {
	s.rowIdx.add(tg.Table, tg.Row, Ref{ID: id, Columns: tg.Columns})
	s.targetsOf[id] = append(s.targetsOf[id], targetEntry{Target: tg, rid: rid})
}

// Add stores the annotation and attaches it to every target, assigning and
// returning its ID. At least one target is required; a zero Columns set in
// a target is rejected (use WholeRow for row-level annotations).
func (s *Store) Add(a Annotation, targets []Target) (ID, error) {
	if len(targets) == 0 {
		return 0, fmt.Errorf("annotation: at least one target required")
	}
	for _, tg := range targets {
		if tg.Columns.Empty() {
			return 0, fmt.Errorf("annotation: empty column set for table %q row %d", tg.Table, tg.Row)
		}
		if tg.Table == "" {
			return 0, fmt.Errorf("annotation: target missing table name")
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a.ID = s.nextID
	rid, err := s.anns.Insert(encodeAnnotation(a))
	if err != nil {
		return 0, err
	}
	for _, tg := range targets {
		rid, err := s.targets.Insert(encodeTarget(a.ID, tg))
		if err != nil {
			return 0, err
		}
		s.indexTarget(a.ID, tg, rid)
	}
	s.byID[a.ID] = rid
	s.rawBytes += int64(len(encodeAnnotation(a)))
	for _, tg := range targets {
		s.rawBytes += int64(len(encodeTarget(a.ID, tg)))
	}
	s.nextID++
	return a.ID, nil
}

// Restore re-adds an annotation under its original id (snapshot load).
// The id must be unused; the allocator advances past it.
func (s *Store) Restore(a Annotation, targets []Target) error {
	if a.ID == 0 {
		return fmt.Errorf("annotation: Restore requires an id")
	}
	if len(targets) == 0 {
		return fmt.Errorf("annotation: at least one target required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[a.ID]; dup {
		return fmt.Errorf("annotation: annotation %d already exists", a.ID)
	}
	rid, err := s.anns.Insert(encodeAnnotation(a))
	if err != nil {
		return err
	}
	for _, tg := range targets {
		trid, err := s.targets.Insert(encodeTarget(a.ID, tg))
		if err != nil {
			return err
		}
		s.indexTarget(a.ID, tg, trid)
		s.rawBytes += int64(len(encodeTarget(a.ID, tg)))
	}
	s.byID[a.ID] = rid
	s.rawBytes += int64(len(encodeAnnotation(a)))
	if a.ID >= s.nextID {
		s.nextID = a.ID + 1
	}
	return nil
}

// NextID exposes the id allocator position (snapshot persistence).
func (s *Store) NextID() ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextID
}

// EnsureNextID advances the id allocator to at least next (snapshot
// restore): annotation ids are never reused even when the most recent
// annotations were retracted before the snapshot was taken.
func (s *Store) EnsureNextID(next ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if next > s.nextID {
		s.nextID = next
	}
}

// Get retrieves an annotation by id.
func (s *Store) Get(id ID) (Annotation, error) {
	s.mu.RLock()
	rid, ok := s.byID[id]
	s.mu.RUnlock()
	if !ok {
		return Annotation{}, fmt.Errorf("annotation: no annotation %d", id)
	}
	data, err := s.anns.Get(rid)
	if err != nil {
		return Annotation{}, err
	}
	return decodeAnnotation(data)
}

// GetMany retrieves several annotations, in the order given.
func (s *Store) GetMany(ids []ID) ([]Annotation, error) {
	out := make([]Annotation, 0, len(ids))
	for _, id := range ids {
		a, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// ForTuple returns the annotation refs attached to (table, row), sorted by
// annotation id. Refs for the same annotation covering disjoint column sets
// are merged into one ref with the union coverage. It takes only the
// tuple's stripe lock, so parallel scan workers resolving different tuples
// read the index concurrently.
func (s *Store) ForTuple(table string, row types.RowID) []Ref {
	return s.rowIdx.refs(table, row)
}

// TargetsOf returns every target of annotation id.
func (s *Store) TargetsOf(id ID) []Target {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Target, 0, len(s.targetsOf[id]))
	for _, te := range s.targetsOf[id] {
		out = append(out, te.Target)
	}
	return out
}

// Remove retracts annotation id: the annotation record and every one of
// its target records are deleted and all indexes updated. It returns the
// targets the annotation previously covered (so callers can curate the
// affected summary objects).
func (s *Store) Remove(id ID) ([]Target, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rid, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("annotation: no annotation %d", id)
	}
	data, err := s.anns.Get(rid)
	if err != nil {
		return nil, err
	}
	if err := s.anns.Delete(rid); err != nil {
		return nil, err
	}
	s.rawBytes -= int64(len(data))
	delete(s.byID, id)
	entries := s.targetsOf[id]
	delete(s.targetsOf, id)
	out := make([]Target, 0, len(entries))
	for _, te := range entries {
		tdata, err := s.targets.Get(te.rid)
		if err == nil {
			s.rawBytes -= int64(len(tdata))
		}
		if err := s.targets.Delete(te.rid); err != nil {
			return nil, err
		}
		s.rowIdx.dropAnn(te.Table, te.Row, id)
		out = append(out, te.Target)
	}
	return out, nil
}

// DetachRow removes every target record pointing at (table, row) — the
// cascade of a tuple deletion. Annotations left with no targets anywhere
// are fully removed. It returns the ids that were attached to the row and
// the subset that became orphaned and was deleted.
func (s *Store) DetachRow(table string, row types.RowID) (detached, orphaned []ID, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	refs := s.rowIdx.refs(table, row)
	if len(refs) == 0 {
		return nil, nil, nil
	}
	seen := map[ID]bool{}
	for _, ref := range refs {
		if seen[ref.ID] {
			continue
		}
		seen[ref.ID] = true
		detached = append(detached, ref.ID)
		kept := s.targetsOf[ref.ID][:0]
		for _, te := range s.targetsOf[ref.ID] {
			if te.Table == table && te.Row == row {
				if tdata, gerr := s.targets.Get(te.rid); gerr == nil {
					s.rawBytes -= int64(len(tdata))
				}
				if derr := s.targets.Delete(te.rid); derr != nil {
					return nil, nil, derr
				}
				continue
			}
			kept = append(kept, te)
		}
		s.targetsOf[ref.ID] = kept
		if len(kept) == 0 {
			rid := s.byID[ref.ID]
			if adata, gerr := s.anns.Get(rid); gerr == nil {
				s.rawBytes -= int64(len(adata))
			}
			if derr := s.anns.Delete(rid); derr != nil {
				return nil, nil, derr
			}
			delete(s.byID, ref.ID)
			delete(s.targetsOf, ref.ID)
			orphaned = append(orphaned, ref.ID)
		}
	}
	s.rowIdx.deleteRow(table, row)
	sort.Slice(detached, func(i, j int) bool { return detached[i] < detached[j] })
	sort.Slice(orphaned, func(i, j int) bool { return orphaned[i] < orphaned[j] })
	return detached, orphaned, nil
}

// RowsOf returns the distinct rows of table that annotation id is attached
// to.
func (s *Store) RowsOf(id ID, table string) []types.RowID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[types.RowID]bool{}
	var out []types.RowID
	for _, tg := range s.targetsOf[id] {
		if tg.Table == table && !seen[tg.Row] {
			seen[tg.Row] = true
			out = append(out, tg.Row)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Count returns the number of stored annotations.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// RawBytes returns the cumulative stored size of the raw annotations and
// their target records (the encoded heap records) — the denominator of the
// paper's summary-compression measurements.
func (s *Store) RawBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rawBytes
}

// AnnotatedRows returns the rows of table that carry at least one
// annotation, sorted.
func (s *Store) AnnotatedRows(table string) []types.RowID {
	return s.rowIdx.rows(table)
}

// RowCount pairs a row with its distinct-annotation count.
type RowCount struct {
	Row   types.RowID
	Count int
}

// TopAnnotated returns the k most-annotated rows of table, highest count
// first (ties in index order), resolved through the per-tuple count index
// rather than a sweep over every annotated row.
func (s *Store) TopAnnotated(table string, k int) []RowCount {
	if k <= 0 {
		return nil
	}
	var all []RowCount
	s.rowIdx.countRange(table, 1, func(row types.RowID, count int) bool {
		all = append(all, RowCount{Row: row, Count: count})
		return true
	})
	// The index scan is ascending by count; the top k sit at the tail.
	out := make([]RowCount, 0, k)
	for i := len(all) - 1; i >= 0 && len(out) < k; i-- {
		out = append(out, all[i])
	}
	return out
}

// RowsAnnotatedAtLeast returns the rows of table carrying at least n
// distinct annotations, in ascending count order, via the count index.
func (s *Store) RowsAnnotatedAtLeast(table string, n int) []types.RowID {
	var out []types.RowID
	s.rowIdx.countRange(table, n, func(row types.RowID, _ int) bool {
		out = append(out, row)
		return true
	})
	return out
}
