package annotation

import (
	"sort"
	"sync"

	"insightnotes/internal/storage"
	"insightnotes/internal/types"
)

// annStripes is the stripe count of the per-tuple ref index. Power of two
// so the stripe pick stays cheap; 32 stripes keep parallel-scan workers on
// distinct locks with high probability.
const annStripes = 32

// rowIndex is the (table, row) → annotation-ref index, sharded N ways by
// tuple key so parallel scan workers resolving a tuple's refs do not
// serialize on the store's main mutex. The heap files and the id-keyed
// indexes stay under Store.mu; writers that need both take Store.mu before
// any stripe lock — the ordering is always Store.mu → stripe, never the
// reverse.
type rowIndex struct {
	stripes [annStripes]annStripe
	// counts is a B+tree keyed (table, distinct-annotation count) → row,
	// maintained on every ref change, so "most annotated tuples of T" and
	// "rows with at least n annotations" resolve by range scan instead of
	// sweeping every stripe. The tree has its own internal lock and is only
	// called from under a stripe lock (leaf order, no cycles).
	counts *storage.BTree
}

type annStripe struct {
	mu sync.RWMutex
	m  map[string]map[types.RowID][]Ref
}

func newRowIndex() *rowIndex {
	ix := &rowIndex{counts: storage.NewBTree()}
	for i := range ix.stripes {
		ix.stripes[i].m = make(map[string]map[types.RowID][]Ref)
	}
	return ix
}

// countKey is the count-index key of (table, n).
func countKey(table string, n int) []byte {
	return storage.EncodeCompositeKey(nil, types.NewString(table), types.NewInt(int64(n)))
}

// distinctIDs counts the distinct annotation ids in a ref list (one
// annotation may contribute several refs with different column sets).
func distinctIDs(refs []Ref) int {
	switch len(refs) {
	case 0:
		return 0
	case 1:
		return 1
	}
	seen := make(map[ID]struct{}, len(refs))
	for _, r := range refs {
		seen[r.ID] = struct{}{}
	}
	return len(seen)
}

// recount moves a row's count-index entry from before to after distinct
// annotations. Called with the row's stripe lock held.
func (ix *rowIndex) recount(table string, row types.RowID, before, after int) {
	if before == after {
		return
	}
	if before > 0 {
		ix.counts.Delete(countKey(table, before), uint64(row))
	}
	if after > 0 {
		ix.counts.Insert(countKey(table, after), uint64(row))
	}
}

// stripeFor hashes (table, row) to a stripe — FNV-1a over the table name
// mixed with the row id, so consecutive rows of one table spread across
// stripes.
func (ix *rowIndex) stripeFor(table string, row types.RowID) *annStripe {
	h := uint64(14695981039346656037)
	for i := 0; i < len(table); i++ {
		h ^= uint64(table[i])
		h *= 1099511628211
	}
	h ^= uint64(row)
	h *= 1099511628211
	return &ix.stripes[h%annStripes]
}

// add appends a ref to a tuple's list.
func (ix *rowIndex) add(table string, row types.RowID, ref Ref) {
	st := ix.stripeFor(table, row)
	st.mu.Lock()
	defer st.mu.Unlock()
	rows, ok := st.m[table]
	if !ok {
		rows = make(map[types.RowID][]Ref)
		st.m[table] = rows
	}
	before := distinctIDs(rows[row])
	rows[row] = append(rows[row], ref)
	ix.recount(table, row, before, distinctIDs(rows[row]))
}

// refs returns the refs of a tuple, merged by annotation id (union column
// coverage) and sorted by id — a private copy, safe to hold after the
// stripe lock is released.
func (ix *rowIndex) refs(table string, row types.RowID) []Ref {
	st := ix.stripeFor(table, row)
	st.mu.RLock()
	raw := st.m[table][row]
	if len(raw) == 0 {
		st.mu.RUnlock()
		return nil
	}
	merged := make(map[ID]ColSet, len(raw))
	for _, r := range raw {
		merged[r.ID] = merged[r.ID].Union(r.Columns)
	}
	st.mu.RUnlock()
	out := make([]Ref, 0, len(merged))
	for id, cols := range merged {
		out = append(out, Ref{ID: id, Columns: cols})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// dropAnn removes one annotation's refs from a tuple's list, dropping the
// list when it empties.
func (ix *rowIndex) dropAnn(table string, row types.RowID, id ID) {
	st := ix.stripeFor(table, row)
	st.mu.Lock()
	defer st.mu.Unlock()
	refs := st.m[table][row]
	before := distinctIDs(refs)
	kept := refs[:0]
	for _, r := range refs {
		if r.ID != id {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(st.m[table], row)
	} else {
		st.m[table][row] = kept
	}
	ix.recount(table, row, before, distinctIDs(kept))
}

// deleteRow drops a tuple's ref list entirely (tuple deletion cascade).
func (ix *rowIndex) deleteRow(table string, row types.RowID) {
	st := ix.stripeFor(table, row)
	st.mu.Lock()
	ix.recount(table, row, distinctIDs(st.m[table][row]), 0)
	delete(st.m[table], row)
	st.mu.Unlock()
}

// countRange scans the count index of table ascending over [atLeast, ∞),
// reporting each (row, count) pair.
func (ix *rowIndex) countRange(table string, atLeast int, fn func(row types.RowID, count int) bool) {
	if atLeast < 1 {
		atLeast = 1
	}
	lo := countKey(table, atLeast)
	hi := storage.KeySuccessor(storage.EncodeCompositeKey(nil, types.NewString(table)))
	ix.counts.Scan(lo, hi, func(k []byte, v uint64) bool {
		vals, err := storage.DecodeCompositeKey(k)
		if err != nil || len(vals) != 2 {
			return true
		}
		return fn(types.RowID(v), int(vals[1].Float()))
	})
}

// rows returns the annotated rows of table, sorted.
func (ix *rowIndex) rows(table string) []types.RowID {
	var out []types.RowID
	for i := range ix.stripes {
		st := &ix.stripes[i]
		st.mu.RLock()
		for r := range st.m[table] {
			out = append(out, r)
		}
		st.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
