package annotation

import (
	"sort"
	"sync"

	"insightnotes/internal/types"
)

// annStripes is the stripe count of the per-tuple ref index. Power of two
// so the stripe pick stays cheap; 32 stripes keep parallel-scan workers on
// distinct locks with high probability.
const annStripes = 32

// rowIndex is the (table, row) → annotation-ref index, sharded N ways by
// tuple key so parallel scan workers resolving a tuple's refs do not
// serialize on the store's main mutex. The heap files and the id-keyed
// indexes stay under Store.mu; writers that need both take Store.mu before
// any stripe lock — the ordering is always Store.mu → stripe, never the
// reverse.
type rowIndex struct {
	stripes [annStripes]annStripe
}

type annStripe struct {
	mu sync.RWMutex
	m  map[string]map[types.RowID][]Ref
}

func newRowIndex() *rowIndex {
	ix := &rowIndex{}
	for i := range ix.stripes {
		ix.stripes[i].m = make(map[string]map[types.RowID][]Ref)
	}
	return ix
}

// stripeFor hashes (table, row) to a stripe — FNV-1a over the table name
// mixed with the row id, so consecutive rows of one table spread across
// stripes.
func (ix *rowIndex) stripeFor(table string, row types.RowID) *annStripe {
	h := uint64(14695981039346656037)
	for i := 0; i < len(table); i++ {
		h ^= uint64(table[i])
		h *= 1099511628211
	}
	h ^= uint64(row)
	h *= 1099511628211
	return &ix.stripes[h%annStripes]
}

// add appends a ref to a tuple's list.
func (ix *rowIndex) add(table string, row types.RowID, ref Ref) {
	st := ix.stripeFor(table, row)
	st.mu.Lock()
	defer st.mu.Unlock()
	rows, ok := st.m[table]
	if !ok {
		rows = make(map[types.RowID][]Ref)
		st.m[table] = rows
	}
	rows[row] = append(rows[row], ref)
}

// refs returns the refs of a tuple, merged by annotation id (union column
// coverage) and sorted by id — a private copy, safe to hold after the
// stripe lock is released.
func (ix *rowIndex) refs(table string, row types.RowID) []Ref {
	st := ix.stripeFor(table, row)
	st.mu.RLock()
	raw := st.m[table][row]
	if len(raw) == 0 {
		st.mu.RUnlock()
		return nil
	}
	merged := make(map[ID]ColSet, len(raw))
	for _, r := range raw {
		merged[r.ID] = merged[r.ID].Union(r.Columns)
	}
	st.mu.RUnlock()
	out := make([]Ref, 0, len(merged))
	for id, cols := range merged {
		out = append(out, Ref{ID: id, Columns: cols})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// dropAnn removes one annotation's refs from a tuple's list, dropping the
// list when it empties.
func (ix *rowIndex) dropAnn(table string, row types.RowID, id ID) {
	st := ix.stripeFor(table, row)
	st.mu.Lock()
	defer st.mu.Unlock()
	refs := st.m[table][row]
	kept := refs[:0]
	for _, r := range refs {
		if r.ID != id {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(st.m[table], row)
	} else {
		st.m[table][row] = kept
	}
}

// deleteRow drops a tuple's ref list entirely (tuple deletion cascade).
func (ix *rowIndex) deleteRow(table string, row types.RowID) {
	st := ix.stripeFor(table, row)
	st.mu.Lock()
	delete(st.m[table], row)
	st.mu.Unlock()
}

// rows returns the annotated rows of table, sorted.
func (ix *rowIndex) rows(table string) []types.RowID {
	var out []types.RowID
	for i := range ix.stripes {
		st := &ix.stripes[i]
		st.mu.RLock()
		for r := range st.m[table] {
			out = append(out, r)
		}
		st.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
