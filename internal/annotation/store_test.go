package annotation

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"insightnotes/internal/storage"
	"insightnotes/internal/types"
)

func newTestStore() *Store {
	return NewStore(storage.NewBufferPool(storage.NewMemStore(), 64))
}

func TestColSetBasics(t *testing.T) {
	c := Col(0).Union(Col(3))
	if !c.Has(0) || !c.Has(3) || c.Has(1) {
		t.Errorf("ColSet = %v", c)
	}
	if c.Count() != 2 {
		t.Errorf("Count = %d", c.Count())
	}
	if got := c.String(); got != "{0,3}" {
		t.Errorf("String = %q", got)
	}
	if WholeRow(3) != Col(0).Union(Col(1)).Union(Col(2)) {
		t.Error("WholeRow(3) wrong")
	}
	if WholeRow(64) != ^ColSet(0) {
		t.Error("WholeRow(64) must saturate")
	}
	if !ColSet(0).Empty() || c.Empty() {
		t.Error("Empty misreported")
	}
	if c.Intersect(Col(3)) != Col(3) {
		t.Error("Intersect wrong")
	}
}

func TestColSetRemap(t *testing.T) {
	// Original columns {0,2,3}; keep columns [2, 0] in that order.
	c := Col(0).Union(Col(2)).Union(Col(3))
	got := c.Remap([]int{2, 0})
	// New ordinal 0 = old 2 (covered), new 1 = old 0 (covered).
	if got != Col(0).Union(Col(1)) {
		t.Errorf("Remap = %v", got)
	}
	// Annotation on only dropped columns vanishes.
	d := Col(1)
	if !d.Remap([]int{0, 2}).Empty() {
		t.Error("dropped-column annotation should remap to empty")
	}
}

func TestColSetRemapShiftProperty(t *testing.T) {
	f := func(bits uint16, w uint8) bool {
		c := ColSet(bits)
		s := c.Shift(int(w % 16))
		return s.Count() == c.Count() || int(w%16)+16 > 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnnotationPreview(t *testing.T) {
	a := Annotation{Text: "Large one having size beyond the usual range for this species"}
	p := a.Preview(20)
	if len(p) > 25 || !strings.HasSuffix(p, "…") {
		t.Errorf("Preview = %q", p)
	}
	short := Annotation{Text: "tiny"}
	if short.Preview(20) != "tiny" {
		t.Errorf("short Preview = %q", short.Preview(20))
	}
	doc := Annotation{Title: "Wikipedia: Swan Goose"}
	if doc.Preview(40) != "Wikipedia: Swan Goose" {
		t.Errorf("title fallback = %q", doc.Preview(40))
	}
}

func TestStoreAddGet(t *testing.T) {
	s := newTestStore()
	id, err := s.Add(
		Annotation{Author: "ornithologist", Created: 1430000000, Text: "found eating stonewort"},
		[]Target{{Table: "birds", Row: 1, Columns: WholeRow(3)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("first id = %d", id)
	}
	a, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != "found eating stonewort" || a.Author != "ornithologist" || a.ID != id {
		t.Errorf("Get = %+v", a)
	}
	if _, err := s.Get(99); err == nil {
		t.Error("Get(missing) succeeded")
	}
}

func TestStoreValidation(t *testing.T) {
	s := newTestStore()
	if _, err := s.Add(Annotation{Text: "x"}, nil); err == nil {
		t.Error("Add with no targets succeeded")
	}
	if _, err := s.Add(Annotation{Text: "x"}, []Target{{Table: "t", Row: 1}}); err == nil {
		t.Error("Add with empty column set succeeded")
	}
	if _, err := s.Add(Annotation{Text: "x"}, []Target{{Row: 1, Columns: Col(0)}}); err == nil {
		t.Error("Add with empty table succeeded")
	}
}

func TestStoreForTupleMergesCoverage(t *testing.T) {
	s := newTestStore()
	// One annotation attached twice to the same row on different columns.
	id, _ := s.Add(Annotation{Text: "conflicting values"}, []Target{
		{Table: "birds", Row: 5, Columns: Col(0)},
		{Table: "birds", Row: 5, Columns: Col(2)},
	})
	refs := s.ForTuple("birds", 5)
	if len(refs) != 1 {
		t.Fatalf("refs = %v", refs)
	}
	if refs[0].ID != id || refs[0].Columns != Col(0).Union(Col(2)) {
		t.Errorf("merged ref = %+v", refs[0])
	}
	if s.ForTuple("birds", 99) != nil {
		t.Error("unannotated row returned refs")
	}
}

func TestStoreMultiTupleAttachment(t *testing.T) {
	s := newTestStore()
	id, _ := s.Add(Annotation{Text: "shared provenance note"}, []Target{
		{Table: "birds", Row: 1, Columns: WholeRow(2)},
		{Table: "birds", Row: 2, Columns: WholeRow(2)},
		{Table: "obs", Row: 7, Columns: Col(1)},
	})
	if got := s.RowsOf(id, "birds"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("RowsOf(birds) = %v", got)
	}
	if got := s.TargetsOf(id); len(got) != 3 {
		t.Errorf("TargetsOf = %v", got)
	}
	if got := s.AnnotatedRows("birds"); len(got) != 2 {
		t.Errorf("AnnotatedRows = %v", got)
	}
}

func TestStoreRefsSortedByID(t *testing.T) {
	s := newTestStore()
	for i := 0; i < 20; i++ {
		s.Add(Annotation{Text: fmt.Sprintf("note %d", i)},
			[]Target{{Table: "t", Row: 1, Columns: Col(0)}})
	}
	refs := s.ForTuple("t", 1)
	for i := 1; i < len(refs); i++ {
		if refs[i-1].ID >= refs[i].ID {
			t.Fatal("refs not sorted by id")
		}
	}
}

func TestStoreGetMany(t *testing.T) {
	s := newTestStore()
	var ids []ID
	for i := 0; i < 3; i++ {
		id, _ := s.Add(Annotation{Text: fmt.Sprintf("a%d", i)},
			[]Target{{Table: "t", Row: 1, Columns: Col(0)}})
		ids = append(ids, id)
	}
	got, err := s.GetMany([]ID{ids[2], ids[0]})
	if err != nil || len(got) != 2 || got[0].Text != "a2" || got[1].Text != "a0" {
		t.Errorf("GetMany = %v, %v", got, err)
	}
	if _, err := s.GetMany([]ID{99}); err == nil {
		t.Error("GetMany(missing) succeeded")
	}
}

func TestStoreRawBytesAndCount(t *testing.T) {
	s := newTestStore()
	s.Add(Annotation{Text: "12345", Document: strings.Repeat("d", 100), Title: "T"},
		[]Target{{Table: "t", Row: 1, Columns: Col(0)}})
	if s.Count() != 1 {
		t.Errorf("Count = %d", s.Count())
	}
	// RawBytes counts the full encoded records (annotation + targets), so
	// it must exceed the payload size but stay within a small overhead.
	if got := s.RawBytes(); got < 5+100+1 || got > 200 {
		t.Errorf("RawBytes = %d", got)
	}
}

func TestStoreRemove(t *testing.T) {
	s := newTestStore()
	id1, _ := s.Add(Annotation{Text: "first"}, []Target{
		{Table: "t", Row: 1, Columns: Col(0)},
		{Table: "t", Row: 2, Columns: Col(1)},
		{Table: "u", Row: 1, Columns: Col(0)},
	})
	id2, _ := s.Add(Annotation{Text: "second"}, []Target{{Table: "t", Row: 1, Columns: Col(0)}})
	before := s.RawBytes()

	targets, err := s.Remove(id1)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 3 {
		t.Fatalf("targets = %v", targets)
	}
	if _, err := s.Get(id1); err == nil {
		t.Error("removed annotation still readable")
	}
	if _, err := s.Remove(id1); err == nil {
		t.Error("double Remove succeeded")
	}
	if s.Count() != 1 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.RawBytes() >= before {
		t.Errorf("RawBytes not reduced: %d >= %d", s.RawBytes(), before)
	}
	// Row indexes updated: t/1 keeps only id2; t/2 and u/1 are empty.
	refs := s.ForTuple("t", 1)
	if len(refs) != 1 || refs[0].ID != id2 {
		t.Errorf("t/1 refs = %v", refs)
	}
	if s.ForTuple("t", 2) != nil || s.ForTuple("u", 1) != nil {
		t.Error("stale refs after Remove")
	}
	if got := s.TargetsOf(id1); len(got) != 0 {
		t.Errorf("TargetsOf survives Remove: %v", got)
	}
}

func TestStoreDetachRow(t *testing.T) {
	s := newTestStore()
	// exclusive: only on t/1 → orphaned by detach.
	exclusive, _ := s.Add(Annotation{Text: "exclusive"}, []Target{{Table: "t", Row: 1, Columns: Col(0)}})
	// shared: on t/1 and t/2 → survives on t/2.
	shared, _ := s.Add(Annotation{Text: "shared"}, []Target{
		{Table: "t", Row: 1, Columns: Col(0)},
		{Table: "t", Row: 2, Columns: Col(0)},
	})
	detached, orphaned, err := s.DetachRow("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(detached) != 2 || detached[0] != exclusive || detached[1] != shared {
		t.Errorf("detached = %v", detached)
	}
	if len(orphaned) != 1 || orphaned[0] != exclusive {
		t.Errorf("orphaned = %v", orphaned)
	}
	if _, err := s.Get(exclusive); err == nil {
		t.Error("orphaned annotation still readable")
	}
	if _, err := s.Get(shared); err != nil {
		t.Errorf("shared annotation removed: %v", err)
	}
	if got := s.RowsOf(shared, "t"); len(got) != 1 || got[0] != 2 {
		t.Errorf("shared rows = %v", got)
	}
	// Detaching an unannotated row is a no-op.
	d, o, err := s.DetachRow("t", 99)
	if err != nil || d != nil || o != nil {
		t.Errorf("no-op detach = %v, %v, %v", d, o, err)
	}
}

func TestStoreRestore(t *testing.T) {
	s := newTestStore()
	a := Annotation{ID: 7, Text: "restored", Author: "x", Created: 5}
	targets := []Target{{Table: "t", Row: 3, Columns: Col(1)}}
	if err := s.Restore(a, targets); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(7)
	if err != nil || got.Text != "restored" {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	// Allocator advanced past the restored id.
	next, _ := s.Add(Annotation{Text: "next"}, targets)
	if next != 8 {
		t.Errorf("next id = %d", next)
	}
	// Validation.
	if err := s.Restore(Annotation{Text: "no id"}, targets); err == nil {
		t.Error("Restore without id succeeded")
	}
	if err := s.Restore(a, targets); err == nil {
		t.Error("duplicate Restore succeeded")
	}
	if err := s.Restore(Annotation{ID: 9}, nil); err == nil {
		t.Error("Restore without targets succeeded")
	}
}

func TestAnnotationHasDocument(t *testing.T) {
	if (Annotation{Text: "x"}).HasDocument() {
		t.Error("text-only annotation claims a document")
	}
	if !(Annotation{Document: "d"}).HasDocument() {
		t.Error("document annotation denies it")
	}
}

func TestStoreRemoveThenReopen(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemStore(), 64)
	s := NewStore(pool)
	id1, _ := s.Add(Annotation{Text: "keep"}, []Target{{Table: "t", Row: 1, Columns: Col(0)}})
	id2, _ := s.Add(Annotation{Text: "drop"}, []Target{{Table: "t", Row: 2, Columns: Col(0)}})
	if _, err := s.Remove(id2); err != nil {
		t.Fatal(err)
	}
	annPages, targetPages := s.Pages()
	s2, err := OpenStore(pool, annPages, targetPages)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 1 {
		t.Fatalf("reopened Count = %d", s2.Count())
	}
	if _, err := s2.Get(id1); err != nil {
		t.Errorf("survivor unreadable: %v", err)
	}
	if _, err := s2.Get(id2); err == nil {
		t.Error("removed annotation resurrected")
	}
}

func TestStorePersistenceRoundTrip(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemStore(), 64)
	s := NewStore(pool)
	var lastID ID
	for i := 0; i < 50; i++ {
		id, err := s.Add(
			Annotation{Author: "a", Created: int64(i), Text: fmt.Sprintf("note %d about feeding", i),
				Document: strings.Repeat("doc ", i%5)},
			[]Target{
				{Table: "birds", Row: types.RowID(i % 7), Columns: WholeRow(4)},
				{Table: "obs", Row: types.RowID(i), Columns: Col(i % 3)},
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		lastID = id
	}
	annPages, targetPages := s.Pages()
	s2, err := OpenStore(pool, annPages, targetPages)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 50 {
		t.Fatalf("reopened Count = %d", s2.Count())
	}
	if s2.RawBytes() != s.RawBytes() {
		t.Errorf("RawBytes diverged: %d vs %d", s2.RawBytes(), s.RawBytes())
	}
	// Same refs per row.
	for row := types.RowID(0); row < 7; row++ {
		a := s.ForTuple("birds", row)
		b := s2.ForTuple("birds", row)
		if len(a) != len(b) {
			t.Fatalf("row %d refs: %d vs %d", row, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d ref %d: %+v vs %+v", row, i, a[i], b[i])
			}
		}
	}
	// New ids continue after the persisted max.
	id, err := s2.Add(Annotation{Text: "after reopen"},
		[]Target{{Table: "birds", Row: 1, Columns: Col(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if id != lastID+1 {
		t.Errorf("id after reopen = %d, want %d", id, lastID+1)
	}
}
