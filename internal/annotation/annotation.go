// Package annotation implements the raw-annotation store underneath the
// InsightNotes summary engine: free-text annotations (optionally carrying a
// large attached document) targeted at tuples or individual cells of user
// relations, persisted in heap pages with in-memory indexes for
// tuple-oriented retrieval.
//
// Raw annotations are written once at ingestion and read back only by
// zoom-in queries and summary (re)builds; all query-time processing happens
// on the summary objects (see internal/summary), which is the paper's
// central idea.
package annotation

import (
	"fmt"
	"strings"

	"insightnotes/internal/types"
)

// ID identifies an annotation. IDs are assigned sequentially by the store
// starting from 1 and never reused.
type ID uint64

// ColSet is a bitmask over a relation's column ordinals identifying which
// cells of a tuple an annotation covers. The engine supports relations of
// up to 64 columns, which comfortably covers the paper's use cases.
type ColSet uint64

// WholeRow returns the ColSet covering all n columns (an annotation on the
// entire tuple).
func WholeRow(n int) ColSet {
	if n >= 64 {
		return ^ColSet(0)
	}
	return ColSet(1)<<uint(n) - 1
}

// Col returns the ColSet covering only column ordinal i.
func Col(i int) ColSet { return ColSet(1) << uint(i) }

// Has reports whether column ordinal i is covered.
func (c ColSet) Has(i int) bool { return c&(ColSet(1)<<uint(i)) != 0 }

// Union returns the union of two column sets.
func (c ColSet) Union(o ColSet) ColSet { return c | o }

// Intersect returns the intersection of two column sets.
func (c ColSet) Intersect(o ColSet) ColSet { return c & o }

// Empty reports whether no column is covered.
func (c ColSet) Empty() bool { return c == 0 }

// Count returns the number of covered columns.
func (c ColSet) Count() int {
	n := 0
	for c != 0 {
		c &= c - 1
		n++
	}
	return n
}

// Remap builds the column set in a projected schema: bit j of the result is
// set iff bit keep[j] is set in c. Columns outside keep are dropped — this
// is the ColSet half of the paper's project-on-summary-objects operation.
func (c ColSet) Remap(keep []int) ColSet {
	var out ColSet
	for j, orig := range keep {
		if c.Has(orig) {
			out |= Col(j)
		}
	}
	return out
}

// Shift returns the column set offset by w ordinals — the right-hand input
// of a join sees its columns shifted past the left input's width.
func (c ColSet) Shift(w int) ColSet { return c << uint(w) }

// String renders the set as "{0,2,5}".
func (c ColSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := 0; i < 64; i++ {
		if c.Has(i) {
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", i)
			first = false
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Annotation is one raw annotation. Text is the free-text body; Document
// optionally carries a large attached article/file content with a Title
// (the "big text values and large documents" that Snippet summaries
// condense).
type Annotation struct {
	ID       ID
	Author   string
	Created  int64 // Unix seconds, supplied by the caller for determinism
	Text     string
	Title    string
	Document string
}

// HasDocument reports whether the annotation carries an attached document.
func (a Annotation) HasDocument() bool { return a.Document != "" }

// Preview returns a short display form of the annotation body for cluster
// representatives and logs.
func (a Annotation) Preview(max int) string {
	s := strings.TrimSpace(a.Text)
	if s == "" {
		s = strings.TrimSpace(a.Title)
	}
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && s[cut-1] != ' ' {
		cut--
	}
	if cut == 0 {
		cut = max
	}
	return strings.TrimRight(s[:cut], " ") + "…"
}

// Target names the cells one attachment of an annotation covers: a row of
// a table and a set of its columns. One annotation may have many targets
// (the same annotation attached to several tuples — the case the
// AnnotationInvariant/DataInvariant optimization exploits).
type Target struct {
	Table   string
	Row     types.RowID
	Columns ColSet
}

// Ref is an annotation reference as seen from a tuple: which annotation,
// and which of the tuple's columns it covers.
type Ref struct {
	ID      ID
	Columns ColSet
}

// encodeAnnotation serializes an annotation as a storage tuple.
func encodeAnnotation(a Annotation) []byte {
	t := types.Tuple{
		types.NewInt(int64(a.ID)),
		types.NewString(a.Author),
		types.NewInt(a.Created),
		types.NewString(a.Text),
		types.NewString(a.Title),
		types.NewString(a.Document),
	}
	return types.EncodeTuple(nil, t)
}

// decodeAnnotation parses a storage tuple back into an annotation.
func decodeAnnotation(data []byte) (Annotation, error) {
	t, _, err := types.DecodeTuple(data)
	if err != nil {
		return Annotation{}, err
	}
	if len(t) != 6 {
		return Annotation{}, fmt.Errorf("annotation: corrupt record of %d fields", len(t))
	}
	return Annotation{
		ID:       ID(t[0].Int()),
		Author:   t[1].Str(),
		Created:  t[2].Int(),
		Text:     t[3].Str(),
		Title:    t[4].Str(),
		Document: t[5].Str(),
	}, nil
}

// encodeTarget serializes one target record.
func encodeTarget(id ID, tg Target) []byte {
	t := types.Tuple{
		types.NewInt(int64(id)),
		types.NewString(tg.Table),
		types.NewInt(int64(tg.Row)),
		types.NewInt(int64(tg.Columns)),
	}
	return types.EncodeTuple(nil, t)
}

func decodeTarget(data []byte) (ID, Target, error) {
	t, _, err := types.DecodeTuple(data)
	if err != nil {
		return 0, Target{}, err
	}
	if len(t) != 4 {
		return 0, Target{}, fmt.Errorf("annotation: corrupt target record of %d fields", len(t))
	}
	return ID(t[0].Int()), Target{
		Table:   t[1].Str(),
		Row:     types.RowID(t[2].Int()),
		Columns: ColSet(t[3].Int()),
	}, nil
}
