package annotation

import (
	"fmt"
	"reflect"
	"testing"

	"insightnotes/internal/storage"
	"insightnotes/internal/types"
)

// addTo attaches one fresh whole-row annotation to (table, row).
func addTo(t *testing.T, s *Store, table string, row types.RowID) ID {
	t.Helper()
	id, err := s.Add(
		Annotation{Text: fmt.Sprintf("note on %s/%d", table, row)},
		[]Target{{Table: table, Row: row, Columns: WholeRow(2)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestCountIndexTopAnnotated(t *testing.T) {
	s := newTestStore()
	// Row r carries r annotations, r in 1..5.
	for row := 1; row <= 5; row++ {
		for i := 0; i < row; i++ {
			addTo(t, s, "t", types.RowID(row))
		}
	}
	got := s.TopAnnotated("t", 2)
	want := []RowCount{{Row: 5, Count: 5}, {Row: 4, Count: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopAnnotated(2) = %v, want %v", got, want)
	}
	if got := s.TopAnnotated("t", 100); len(got) != 5 || got[0].Count != 5 || got[4].Count != 1 {
		t.Errorf("TopAnnotated(100) = %v, want 5 rows descending from count 5", got)
	}
	if got := s.TopAnnotated("t", 0); got != nil {
		t.Errorf("TopAnnotated(0) = %v, want nil", got)
	}
	if got := s.TopAnnotated("absent", 3); len(got) != 0 {
		t.Errorf("TopAnnotated on unknown table = %v, want none", got)
	}

	if got, want := s.RowsAnnotatedAtLeast("t", 3), []types.RowID{3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("RowsAnnotatedAtLeast(3) = %v, want %v", got, want)
	}
	if got := s.RowsAnnotatedAtLeast("t", 6); len(got) != 0 {
		t.Errorf("RowsAnnotatedAtLeast(6) = %v, want none", got)
	}
	// The floor clamps to 1: unannotated rows never appear.
	if got := s.RowsAnnotatedAtLeast("t", 0); len(got) != 5 {
		t.Errorf("RowsAnnotatedAtLeast(0) = %v, want all 5 annotated rows", got)
	}
}

// TestCountIndexCountsDistinctAnnotations: one annotation targeting the
// same row through several column sets counts once.
func TestCountIndexCountsDistinctAnnotations(t *testing.T) {
	s := newTestStore()
	if _, err := s.Add(Annotation{Text: "multi-target"}, []Target{
		{Table: "t", Row: 1, Columns: Col(0)},
		{Table: "t", Row: 1, Columns: Col(1)},
	}); err != nil {
		t.Fatal(err)
	}
	got := s.TopAnnotated("t", 10)
	want := []RowCount{{Row: 1, Count: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopAnnotated = %v, want %v (distinct annotations, not refs)", got, want)
	}
}

// TestCountIndexTracksMutations drives the index through Remove and
// DetachRow, the two retraction paths.
func TestCountIndexTracksMutations(t *testing.T) {
	s := newTestStore()
	a1 := addTo(t, s, "t", 1)
	addTo(t, s, "t", 1)
	addTo(t, s, "t", 2)

	if got, want := s.RowsAnnotatedAtLeast("t", 2), []types.RowID{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("RowsAnnotatedAtLeast(2) = %v, want %v", got, want)
	}
	if _, err := s.Remove(a1); err != nil {
		t.Fatal(err)
	}
	if got := s.RowsAnnotatedAtLeast("t", 2); len(got) != 0 {
		t.Errorf("after Remove: RowsAnnotatedAtLeast(2) = %v, want none", got)
	}
	if got := s.TopAnnotated("t", 10); len(got) != 2 {
		t.Errorf("after Remove: TopAnnotated = %v, want rows 1 and 2 at count 1", got)
	}
	if _, _, err := s.DetachRow("t", 1); err != nil {
		t.Fatal(err)
	}
	if got, want := s.RowsAnnotatedAtLeast("t", 1), []types.RowID{2}; !reflect.DeepEqual(got, want) {
		t.Errorf("after DetachRow: RowsAnnotatedAtLeast(1) = %v, want %v", got, want)
	}
}

// TestCountIndexRebuiltOnOpen: OpenStore rebuilds the count index from the
// persisted heap records.
func TestCountIndexRebuiltOnOpen(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemStore(), 64)
	s := NewStore(pool)
	addTo(t, s, "t", 1)
	addTo(t, s, "t", 2)
	addTo(t, s, "t", 2)
	annPages, targetPages := s.Pages()

	reopened, err := OpenStore(pool, annPages, targetPages)
	if err != nil {
		t.Fatal(err)
	}
	got := reopened.TopAnnotated("t", 10)
	want := []RowCount{{Row: 2, Count: 2}, {Row: 1, Count: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopAnnotated after reopen = %v, want %v", got, want)
	}
}
