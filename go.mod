module insightnotes

go 1.22
