#!/bin/sh
# Pre-merge gate: metric-name lint, go vet, and the full test suite under
# the race detector. Equivalent to `make check` plus the lint, for
# environments without make.
set -eu
cd "$(dirname "$0")/.."

# Metric-name lint: every insightnotes_* metric-name literal used by
# non-test code must be declared in internal/metrics/names.go, and every
# declared name must follow the insightnotes_<layer>_<name> scheme. This
# keeps the metric taxonomy reviewable in one file — a rename that skips
# names.go fails here.
echo ">> metric-name lint"
fail=0
used=$(grep -rhoE '"insightnotes_[a-z0-9_]+"' \
	--include='*.go' --exclude='*_test.go' \
	internal cmd | grep -v 'internal/metrics/names.go' | sort -u || true)
for lit in $used; do
	name=$(printf '%s' "$lit" | tr -d '"')
	if ! grep -q "\"$name\"" internal/metrics/names.go; then
		echo "  undeclared metric name $name (declare it in internal/metrics/names.go)" >&2
		fail=1
	fi
done
declared=$(grep -oE '"insightnotes_[a-z0-9_]+"' internal/metrics/names.go | tr -d '"' | sort -u)
# The <layer> segment must come from the known-layer list below, so a
# typo'd family (insightnotes_replication_* vs insightnotes_repl_*) or an
# unreviewed new layer fails here instead of fragmenting dashboards.
layers='engine|summary|exec|bufferpool|plan|plancache|zoomin|server|admission|wal|maintenance|trace|build|process|repl|integrity'
for name in $declared; do
	if ! printf '%s' "$name" | grep -qE '^insightnotes_[a-z][a-z0-9]*_[a-z][a-z0-9_]*$'; then
		echo "  declared name $name violates the insightnotes_<layer>_<name> scheme" >&2
		fail=1
	elif ! printf '%s' "$name" | grep -qE "^insightnotes_($layers)_"; then
		echo "  declared name $name uses an unknown <layer> (known: $layers; extend the list in scripts/check.sh deliberately)" >&2
		fail=1
	fi
done
[ "$fail" -eq 0 ] || exit 1

# Failpoint-name lint: every fp/* name literal used by non-test code must
# be declared in internal/failpoint/names.go. The declarations are the
# catalog the crash-recovery suite iterates over; an inline literal would
# be a crash site with no fault-injection coverage.
echo ">> failpoint-name lint"
fail=0
used=$(grep -rhoE '"fp/[a-z0-9_/]+"' \
	--include='*.go' --exclude='*_test.go' \
	internal cmd | grep -v 'internal/failpoint/names.go' | sort -u || true)
for lit in $used; do
	name=$(printf '%s' "$lit" | tr -d '"')
	if ! grep -q "\"$name\"" internal/failpoint/names.go; then
		echo "  undeclared failpoint name $name (declare it in internal/failpoint/names.go)" >&2
		fail=1
	fi
done
[ "$fail" -eq 0 ] || exit 1

# Span-name lint: lifecycle span names live in internal/trace/names.go
# (the <layer>.<step> taxonomy). A span opened with an inline string
# literal would add vocabulary nobody can find, so StartSpan/Child/
# AddChild call sites outside the trace package must use the trace.Span*
# constants (or trace.OpSpan), and every declared name must follow the
# scheme. Prefix constants may end in a bare dot (op.).
echo ">> span-name lint"
fail=0
inline=$(grep -rnE '\.(StartSpan|Child|AddChild)\("' \
	--include='*.go' --exclude='*_test.go' \
	internal cmd | grep -v '^internal/trace/' || true)
if [ -n "$inline" ]; then
	echo "  inline span-name literal at a span call site (use a trace.Span* constant from internal/trace/names.go):" >&2
	printf '%s\n' "$inline" >&2
	fail=1
fi
declared=$(grep -oE '= "[a-z][a-z0-9_.]*"' internal/trace/names.go | grep -oE '"[^"]+"' | tr -d '"' | sort -u)
for name in $declared; do
	if ! printf '%s' "$name" | grep -qE '^[a-z][a-z0-9_]*(\.([a-z][a-z0-9_]*)?)?$'; then
		echo "  declared span name $name violates the <layer>.<step> scheme" >&2
		fail=1
	fi
done
[ "$fail" -eq 0 ] || exit 1

# Deprecated-client-method lint: the wire client is context-first too —
# Client.Do with CallOptions (WithArgs, WithTrace, WithRetry, WithMutation)
# replaced ExecTraced/ExecRetry/ExecMutation. The old methods survive only
# as compat wrappers in internal/server/compat.go; new call sites in
# non-test code fail here.
echo ">> deprecated client-method lint"
fail=0
found=$(grep -rnE '\.(ExecTraced|ExecRetry|ExecMutation)\(' \
	--include='*.go' --exclude='*_test.go' \
	internal cmd examples 2>/dev/null | grep -v '^internal/server/compat.go' || true)
if [ -n "$found" ]; then
	echo "  deprecated client method call site (migrate to Client.Do with CallOptions):" >&2
	printf '%s\n' "$found" >&2
	fail=1
fi
[ "$fail" -eq 0 ] || exit 1

# Context-suffix lint: the statement API is context-first (Query, Exec,
# ExecScript, ExecStatement, ZoomIn all take a ctx plus options), so new
# exported ...Context methods on the engine are a design regression. Only
# the pre-consolidation wrappers in compat.go are allowlisted; add new
# behavior as a StatementOption instead.
echo ">> context-suffix API lint"
fail=0
allow='QueryContext|QueryTracedContext|ExecContext|ExecScriptContext|ExecStatementContext|ZoomInContext'
found=$(grep -rhoE 'func \(db \*DB\) [A-Z][A-Za-z0-9]*Context\(' \
	--include='*.go' --exclude='*_test.go' internal/engine |
	sed -E 's/func \(db \*DB\) ([A-Za-z0-9]+)\(/\1/' | sort -u || true)
for name in $found; do
	if ! printf '%s' "$name" | grep -qE "^($allow)$"; then
		echo "  new exported ...Context method $name in internal/engine (add a StatementOption to the context-first API instead)" >&2
		fail=1
	fi
done
[ "$fail" -eq 0 ] || exit 1

echo ">> go vet ./..."
go vet ./...
echo ">> go test -race ./..."
go test -race ./...
echo ">> crash simulation (x3, race)"
go test -run TestCrashRecovery -count=3 -race ./internal/engine/
echo ">> overload soak (short, race)"
go test -run TestOverloadSoak -count=1 -race -short ./internal/server/
echo ">> replication chaos soak: kill-and-restart a replica mid-stream (race)"
go test -run TestReplicationSoak -count=1 -race -short ./internal/replication/
echo ">> bit-rot chaos soak: flip bytes on disk, scrub, repair over the replication link (race)"
go test -run TestScrubSoak -count=1 -race -short ./internal/replication/
echo ">> storage fuzz smoke: page round-trip, hostile raw pages, key decoding"
go test -run '^$' -fuzz FuzzPageRoundTrip -fuzztime 3s ./internal/storage/
go test -run '^$' -fuzz FuzzPageRawBytes -fuzztime 3s ./internal/storage/
go test -run '^$' -fuzz FuzzDecodeKey -fuzztime 3s ./internal/storage/
echo ">> batch/parallel equivalence property (race)"
go test -run TestBatchParallelEquivalence -count=1 -race ./internal/engine/
echo ">> storage layer: key encoding, heap/B+tree/buffer pool, index-vs-heap crash consistency (race)"
go test -count=1 -race ./internal/storage/
go test -run 'TestCrashBetweenHeapAndIndexInsert|TestPageFileBackedEngine|TestInstanceIndexAndEnvelopePersistence' -count=1 -race ./internal/engine/
echo "OK"
