#!/bin/sh
# Pre-merge gate: go vet plus the full test suite under the race detector.
# Equivalent to `make check`, for environments without make.
set -eu
cd "$(dirname "$0")/.."
echo ">> go vet ./..."
go vet ./...
echo ">> go test -race ./..."
go test -race ./...
echo "OK"
