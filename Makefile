GO ?= go

.PHONY: build test bench bench-metrics bench-wal bench-parallel bench-storage bench-trace bench-prepare crash-sim soak soak-repl soak-scrub fuzz check vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full suite under
# the race detector (the concurrency and cancellation tests depend on it).
check: vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-metrics measures observability overhead: the raw registry hot paths
# and the end-to-end statement cost with metrics on vs off. Numbers are
# recorded in EXPERIMENTS.md (E12) with a ≤5% end-to-end budget.
bench-metrics:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/metrics/
	$(GO) test -bench='BenchmarkInstrumentationOverhead|BenchmarkConcurrentReaders' -benchmem -run=^$$ .

# bench-wal measures durability overhead (fsync-per-commit INSERT vs
# in-memory) and cold-start WAL replay speed. Recorded in E13.
bench-wal:
	$(GO) test -bench='BenchmarkInsertMemory|BenchmarkInsertDurable|BenchmarkRecoveryReplay' -benchmem -run=^$$ ./internal/engine/

# bench-parallel measures E14: morsel-driven parallel scan scaling over
# worker counts and the vectorized batch pipeline vs row-at-a-time
# execution. Speedup tracks physical cores. Recorded in E14.
bench-parallel:
	$(GO) test -bench='BenchmarkParallelScan|BenchmarkBatchPipeline' -benchmem -run=^$$ .

# bench-storage measures the disk-backed storage layer: B+tree index point
# and range lookups vs forced full heap scans at 10k/100k/1M rows, through
# the cost-based planner. Recorded in E15.
bench-storage:
	$(GO) test -bench='BenchmarkStoragePointLookup|BenchmarkStorageRangeScan' -benchmem -run=^$$ ./internal/engine/

# bench-trace measures lifecycle-tracing overhead: the end-to-end
# statement cost with tracing off, at the default 5% tail sample, and
# fully retained. Recorded in E16 with a ≤5% budget at the default rate.
bench-trace:
	$(GO) test -bench=BenchmarkTraceOverhead -benchmem -run=^$$ ./internal/engine/

# bench-prepare measures E18: repeated EXECUTE of a prepared statement
# (plan cache hit, no parse/cost) vs the same query ad-hoc with the cache
# disabled, and BULK INSERT (one WAL record + fsync per batch) vs
# row-at-a-time durable inserts. Recorded in E18.
bench-prepare:
	$(GO) test -bench='BenchmarkAdhocSelect|BenchmarkPreparedExecute' -benchmem -run=^$$ ./internal/engine/
	$(GO) test -bench='BenchmarkRowInsertDurable|BenchmarkBulkInsertDurable' -benchmem -run=^$$ ./internal/engine/

# crash-sim is the fault-injection gate on its own: every registered
# failpoint in the WAL/snapshot paths, three runs, race detector on.
crash-sim:
	$(GO) test -run TestCrashRecovery -count=3 -race ./internal/engine/

# soak is the overload harness on its own: clients at a multiple of the
# admitted statement capacity against a durable engine in degraded
# maintenance mode, race detector on, -short for the check-gate duration.
soak:
	$(GO) test -run TestOverloadSoak -count=1 -race -short -v ./internal/server/

# soak-repl is the replication chaos soak on its own: a primary with an
# aggressive checkpoint cadence, two read replicas behind staleness
# bounds, a live workload, and a crash-failpoint kill-and-restart of one
# replica mid-stream; final states are compared record for record and
# stale replicas must shed reads with the structured STALE error.
soak-repl:
	$(GO) test -run TestReplicationSoak -count=1 -race -short -v ./internal/replication/

# soak-scrub is the bit-rot chaos soak on its own: random byte flips
# injected into heap pages on disk of a primary/replica pair; the scrubber
# must detect every flip, repair memory-mirrored pages locally, repair row
# and annotation pages from a CRC-verified snapshot over the replication
# link, rebuild a disagreeing index from the heap, and shed reads of
# unrepairable pages with the structured CORRUPT error.
soak-scrub:
	$(GO) test -run TestScrubSoak -count=1 -race -short -v ./internal/replication/

# fuzz runs each storage fuzz target briefly — the page record round-trip,
# the hostile-raw-page read paths, and the order-preserving key decoder.
# CI-sized smoke; crank -fuzztime locally for real exploration.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzPageRoundTrip -fuzztime 10s ./internal/storage/
	$(GO) test -run '^$$' -fuzz FuzzPageRawBytes -fuzztime 10s ./internal/storage/
	$(GO) test -run '^$$' -fuzz FuzzDecodeKey -fuzztime 10s ./internal/storage/
