GO ?= go

.PHONY: build test bench check vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full suite under
# the race detector (the concurrency and cancellation tests depend on it).
check: vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
