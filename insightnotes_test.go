package insightnotes_test

// Public-API integration tests: everything here goes through the root
// package exactly the way a downstream user would.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"insightnotes"
)

func openDB(t *testing.T) *insightnotes.DB {
	t.Helper()
	db, err := insightnotes.Open(insightnotes.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func run(t *testing.T, db *insightnotes.DB, stmt string) *insightnotes.Result {
	t.Helper()
	res, err := db.Exec(context.Background(), stmt)
	if err != nil {
		t.Fatalf("Exec(%q): %v", stmt, err)
	}
	return res
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	db := openDB(t)
	run(t, db, `CREATE TABLE birds (id INT, name TEXT, wingspan FLOAT)`)
	run(t, db, `INSERT INTO birds VALUES (1, 'Swan Goose', 1.8), (2, 'Mute Swan', 2.2)`)
	run(t, db, `CREATE SUMMARY INSTANCE C TYPE Classifier LABELS ('Behavior', 'Other')`)
	run(t, db, `TRAIN SUMMARY C ('feeding foraging stonewort flock', 'Behavior'),
		('photo camera record duplicate', 'Other')`)
	run(t, db, `LINK SUMMARY C TO birds`)
	run(t, db, `ADD ANNOTATION 'observed feeding on stonewort' ON birds WHERE id = 1`)
	run(t, db, `ADD ANNOTATION 'photo from the camera archive' ON birds WHERE id = 1`)

	res, err := db.Query(context.Background(), `SELECT id, name FROM birds WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Env == nil {
		t.Fatalf("rows = %v", res.Rows)
	}
	render := res.Rows[0].Env.Render()
	if !strings.Contains(render, "(Behavior, 1)") || !strings.Contains(render, "(Other, 1)") {
		t.Errorf("summary = %q", render)
	}

	zoom := run(t, db, fmt.Sprintf(`ZOOMIN REFERENCE QID %d ON C INDEX 1`, res.QID))
	if zoom.Count != 1 || zoom.ZoomAnnotations[0].Annotations[0].Text != "observed feeding on stonewort" {
		t.Fatalf("zoom = %+v", zoom.ZoomAnnotations)
	}
}

func TestPublicAPIProgrammaticAnnotation(t *testing.T) {
	db := openDB(t)
	run(t, db, `CREATE TABLE t (a INT)`)
	run(t, db, `INSERT INTO t VALUES (1), (2)`)
	run(t, db, `CREATE SUMMARY INSTANCE S TYPE Cluster`)
	run(t, db, `LINK SUMMARY S TO t`)
	id, n, err := db.Annotate(insightnotes.AnnotationRequest{
		Text:  "a note covering every tuple",
		Table: "t",
	})
	if err != nil || id == 0 || n != 2 {
		t.Fatalf("Annotate = %d, %d, %v", id, n, err)
	}
	// Multi-target attachment across scopes.
	run(t, db, `CREATE TABLE u (b INT)`)
	run(t, db, `INSERT INTO u VALUES (7)`)
	_, n, err = db.AnnotateTargets(
		insightnotes.Annotation{Text: "shared across tables", Author: "tester"},
		[]insightnotes.TargetSpec{{Table: "t"}, {Table: "u"}},
	)
	if err != nil || n != 3 {
		t.Fatalf("AnnotateTargets = %d, %v", n, err)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	if insightnotes.RCO().Name() != "RCO" || insightnotes.LRU().Name() != "LRU" {
		t.Error("policy names wrong")
	}
	db, err := insightnotes.Open(insightnotes.Config{
		CacheDir:    t.TempDir(),
		CachePolicy: insightnotes.LRU(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Cache().PolicyName() != "LRU" {
		t.Error("configured policy not applied")
	}
}

func TestPublicAPITraceAndShow(t *testing.T) {
	db := openDB(t)
	run(t, db, `CREATE TABLE t (a INT)`)
	run(t, db, `INSERT INTO t VALUES (1)`)
	res, err := db.Query(context.Background(), `SELECT a FROM t`, insightnotes.WithTrace())
	if err != nil || len(res.Trace) == 0 {
		t.Fatalf("trace = %v, %v", res.Trace, err)
	}
	show := run(t, db, `SHOW TABLES`)
	if len(show.Rows) != 1 {
		t.Fatalf("SHOW TABLES = %v", show.Rows)
	}
}
